"""Cross-process dedup leases: exactly-once search across service processes.

The in-flight dedup table in :mod:`repro.service.api` is per-process, so
two *service processes* sharing one cache directory could each run the
same search simultaneously.  This module extends exactly-once to that
case with a **lease file** per fingerprint in the cache directory:

* ``<cache_dir>/<fingerprint>.lease`` — ownership record (owner token,
  pid, acquisition time), created and inspected under an exclusive
  ``flock`` on the lease file itself, so acquisition is atomic across
  processes.
* The owner **heartbeats** by refreshing the file's mtime while its
  search runs (:class:`LeaseManager` runs one heartbeat thread per
  service; :func:`wait_for_result` heartbeats inline after a takeover).
* A lease whose mtime is older than ``stale_after_s`` is **stale** — its
  owner died or hung — and the next acquirer takes it over.

Losers do not search: they run :func:`wait_for_result`, polling the
persistent cache tier until the winner publishes the entry (the winner
stores *before* releasing, so a released lease with no entry means the
winner failed and the waiter takes over and searches itself).

Leases need :mod:`fcntl` (POSIX); where it is unavailable the service
simply skips cross-process dedup — the shared cache still prevents
sequential duplicate work.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

from .cache import CacheEntry, FingerprintCache
from .worker import JobRequest, ServiceResult, cached_result, execute_request

try:  # POSIX advisory locking; absent on some platforms (e.g. Windows)
    import fcntl
except ImportError:  # pragma: no cover - exercised only off-POSIX
    fcntl = None

__all__ = ["LeaseConfig", "LeaseManager", "try_acquire", "refresh_lease",
           "release_lease", "wait_for_result", "leases_supported",
           "LEASE_SUFFIX"]

#: Lease files live next to the cache entries they guard:
#: ``<cache_dir>/<fingerprint>.lease``.
LEASE_SUFFIX = ".lease"


def leases_supported() -> bool:
    """Whether this platform can run cross-process dedup leases."""
    return fcntl is not None


@dataclass(frozen=True)
class LeaseConfig:
    """Timing knobs for cross-process dedup leases.

    Attributes:
        heartbeat_s: How often a lease owner refreshes its lease's mtime.
        stale_after_s: Age (since last heartbeat) past which a lease is
            considered abandoned and may be taken over.  Must comfortably
            exceed ``heartbeat_s`` — 5x or more — so one missed beat on a
            loaded box does not trigger a spurious takeover.
        poll_interval_s: How often a waiting loser re-checks the cache
            tier and the lease's staleness.
        max_wait_s: Upper bound on one waiter's total wait (covers the
            pathological chain of repeated owner deaths); the waiter
            raises :class:`TimeoutError` beyond it.
    """

    heartbeat_s: float = 1.0
    stale_after_s: float = 10.0
    poll_interval_s: float = 0.1
    max_wait_s: float = 600.0


def _lease_path(cache_dir: Union[str, Path], fingerprint: str) -> Path:
    return Path(cache_dir) / f"{fingerprint}{LEASE_SUFFIX}"


def _locked_fd(path: Path) -> int:
    """Open-or-create ``path`` and take an exclusive ``flock`` on it."""
    fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
    try:
        fcntl.flock(fd, fcntl.LOCK_EX)
    except OSError:
        os.close(fd)
        raise
    return fd


def try_acquire(cache_dir: Union[str, Path], fingerprint: str,
                stale_after_s: float) -> Optional[str]:
    """Try to become ``fingerprint``'s search owner.

    Under an exclusive ``flock`` on the lease file: an empty, corrupt or
    **stale** (mtime older than ``stale_after_s``) lease is claimed by
    writing a fresh ownership record; a live lease belonging to someone
    else is left untouched.

    Args:
        cache_dir: The shared cache directory.
        fingerprint: The request fingerprint the lease guards.
        stale_after_s: Staleness horizon for takeover.

    Returns:
        The owner token on success (pass it to :func:`refresh_lease` /
        :func:`release_lease`), or ``None`` if another live process holds
        the lease.  Also ``None`` where leases are unsupported.
    """
    if fcntl is None:
        return None
    path = _lease_path(cache_dir, fingerprint)
    try:
        fd = _locked_fd(path)
    except OSError:
        return None
    try:
        raw = os.read(fd, 4096)
        if raw.strip():
            try:
                age = time.time() - os.fstat(fd).st_mtime
            except OSError:
                age = float("inf")
            if age <= stale_after_s:
                try:
                    owner = json.loads(raw)
                except ValueError:
                    owner = None
                if isinstance(owner, dict) and owner.get("token"):
                    return None  # live lease, someone else's search
        token = f"{os.getpid()}-{uuid.uuid4().hex}"
        record = {"token": token, "pid": os.getpid(),
                  "acquired_at": time.time()}
        payload = json.dumps(record).encode()
        os.lseek(fd, 0, os.SEEK_SET)
        os.truncate(fd, 0)
        os.write(fd, payload)
        os.utime(path, None)
        return token
    except OSError:
        return None
    finally:
        try:
            fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)


def _owned(fd: int, token: str) -> bool:
    os.lseek(fd, 0, os.SEEK_SET)
    try:
        owner = json.loads(os.read(fd, 4096))
    except ValueError:
        return False
    return isinstance(owner, dict) and owner.get("token") == token


def refresh_lease(cache_dir: Union[str, Path], fingerprint: str,
                  token: str) -> bool:
    """Heartbeat: refresh the lease's mtime if ``token`` still owns it.

    Returns:
        True if the lease is still ours; False if it was taken over (the
        owner should treat its search as abandoned-by-the-cluster — the
        result is still published, takeover only means someone else also
        searched).
    """
    if fcntl is None:
        return False
    path = _lease_path(cache_dir, fingerprint)
    try:
        fd = _locked_fd(path)
    except OSError:
        return False
    try:
        if not _owned(fd, token):
            return False
        os.utime(path, None)
        return True
    except OSError:
        return False
    finally:
        try:
            fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)


def release_lease(cache_dir: Union[str, Path], fingerprint: str,
                  token: str) -> None:
    """Delete the lease if ``token`` still owns it (idempotent)."""
    if fcntl is None:
        return
    path = _lease_path(cache_dir, fingerprint)
    try:
        fd = _locked_fd(path)
    except OSError:
        return
    try:
        if _owned(fd, token):
            path.unlink(missing_ok=True)
    except OSError:
        pass
    finally:
        try:
            fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)


class LeaseManager:
    """Service-side lease bookkeeping: acquisition plus one heartbeat thread.

    The service acquires a lease at admission time (before dispatching a
    novel fingerprint) and releases it from the job's done-callback —
    *after* the success path has published the cache entry, so a released
    lease with no entry unambiguously means the search failed.  While
    leases are held, a single daemon thread refreshes every one of them
    each ``config.heartbeat_s``.

    Args:
        cache_dir: The shared cache directory the leases live in.
        config: Timing knobs (defaults are fine for real searches).
    """

    def __init__(self, cache_dir: Union[str, Path],
                 config: Optional[LeaseConfig] = None):
        self.cache_dir = Path(cache_dir)
        self.config = config or LeaseConfig()
        self._held: Dict[str, str] = {}
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    def acquire(self, fingerprint: str) -> Optional[str]:
        """Try to own ``fingerprint``'s search; returns the token or None.

        A returned token is heartbeated automatically until
        :meth:`release`.
        """
        token = try_acquire(self.cache_dir, fingerprint,
                            self.config.stale_after_s)
        if token is None:
            return None
        with self._lock:
            self._held[fingerprint] = token
            if self._thread is None and not self._closed:
                self._thread = threading.Thread(
                    target=self._heartbeat_loop,
                    name="repro-lease-heartbeat", daemon=True)
                self._thread.start()
        return token

    def release(self, fingerprint: str, token: str) -> None:
        """Stop heartbeating and delete the lease (idempotent)."""
        with self._lock:
            if self._held.get(fingerprint) == token:
                del self._held[fingerprint]
        release_lease(self.cache_dir, fingerprint, token)

    def held(self) -> Dict[str, str]:
        """Currently-held ``{fingerprint: token}`` (a copy)."""
        with self._lock:
            return dict(self._held)

    def _heartbeat_loop(self) -> None:
        while not self._closed:
            self._wake.wait(self.config.heartbeat_s)
            if self._closed:
                return
            for fingerprint, token in self.held().items():
                if not refresh_lease(self.cache_dir, fingerprint, token):
                    # Taken over (we were presumed dead) — stop claiming it.
                    with self._lock:
                        if self._held.get(fingerprint) == token:
                            del self._held[fingerprint]

    def close(self) -> None:
        """Release every held lease and stop the heartbeat thread."""
        self._closed = True
        self._wake.set()
        for fingerprint, token in self.held().items():
            self.release(fingerprint, token)
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None


def wait_for_result(request: JobRequest, fingerprint: str, cache_dir: str,
                    heartbeat_s: float = 1.0, stale_after_s: float = 10.0,
                    poll_interval_s: float = 0.1, max_wait_s: float = 600.0,
                    progress: Any = None) -> ServiceResult:
    """Job body for lease *losers*: poll the cache, take over if stale.

    Runs in a worker slot of the losing service.  Loops over:

    1. **Cache check** — the winner published: return the entry as a
       cache hit (``stats["cross_process_dedup"]`` marks the origin).
    2. **Takeover attempt** — the lease went stale (owner died mid-search)
       or was released without an entry (owner failed): acquire it and
       run the search here, heartbeating inline, publishing to the cache
       before releasing — exactly the winner protocol.
    3. Sleep ``poll_interval_s`` and try again.

    Module-level and primitive-argument so it crosses the pickle boundary
    into process-pool workers.

    Args:
        request: The (deduplicated) optimisation request.
        fingerprint: Its admission-time fingerprint.
        cache_dir: The shared cache directory (string for picklability).
        heartbeat_s: Heartbeat cadence after a takeover.
        stale_after_s: Lease staleness horizon.
        poll_interval_s: Cache/lease re-check cadence while waiting.
        max_wait_s: Bound on the total wait.
        progress: Optional progress sink, forwarded to the search if this
            waiter ends up running it.

    Returns:
        The published (or takeover-searched) :class:`ServiceResult`.

    Raises:
        TimeoutError: If nothing was published within ``max_wait_s``.
        Exception: Whatever a takeover search itself raised.
    """
    cache = FingerprintCache(capacity=4, cache_dir=cache_dir)
    deadline = time.monotonic() + max_wait_s
    started = time.perf_counter()

    def published() -> Optional[ServiceResult]:
        entry = cache.get(fingerprint)
        if entry is None:
            return None
        result = cached_result(request, entry,
                               time.perf_counter() - started)
        result.search.stats["cross_process_dedup"] = 1.0
        return result

    while True:
        result = published()
        if result is not None:
            return result
        token = try_acquire(cache_dir, fingerprint, stale_after_s)
        if token is not None:
            # Between our miss and winning the lease the owner may have
            # published and released; re-check before re-searching, or
            # exactly-once degrades to at-least-once under that race.
            result = published()
            if result is not None:
                release_lease(cache_dir, fingerprint, token)
                return result
            return _takeover_search(request, fingerprint, cache, token,
                                    heartbeat_s, progress)
        if time.monotonic() > deadline:
            raise TimeoutError(
                f"gave up waiting {max_wait_s}s for fingerprint "
                f"{fingerprint[:12]} (lease held elsewhere, no entry "
                f"published)")
        time.sleep(poll_interval_s)


def _takeover_search(request: JobRequest, fingerprint: str,
                     cache: FingerprintCache, token: str,
                     heartbeat_s: float, progress: Any) -> ServiceResult:
    """Run the search as the new lease owner, heartbeating inline."""
    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(heartbeat_s):
            if not refresh_lease(cache.cache_dir, fingerprint, token):
                return

    thread = threading.Thread(target=beat, name="repro-lease-takeover",
                              daemon=True)
    thread.start()
    try:
        outcome = execute_request(request, fingerprint, progress=progress)
        cache.put(CacheEntry.from_result(fingerprint, outcome.search))
        return outcome
    finally:
        stop.set()
        thread.join(timeout=5)
        release_lease(cache.cache_dir, fingerprint, token)
