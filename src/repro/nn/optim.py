"""Gradient-based optimisers for the autodiff engine."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .layers import Parameter

__all__ = ["SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Clip gradients in place to a maximum global L2 norm; returns the norm."""
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total = float(np.sqrt(sum(float((g ** 2).sum()) for g in grads)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in parameters:
            if p.grad is not None:
                p.grad *= scale
    return total


class SGD:
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 1e-3,
                 momentum: float = 0.0):
        self.parameters = list(parameters)
        self.lr = float(lr)
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            v *= self.momentum
            v += p.grad
            p.data -= self.lr * v

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()


class Adam:
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 5e-4,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8):
        self.parameters = list(parameters)
        self.lr = float(lr)
        self.beta1, self.beta2 = betas
        self.eps = float(eps)
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        # Bias-correction denominators are shared by every parameter; hoist
        # the scalar powers out of the loop (same arithmetic per parameter).
        bias1 = 1 - self.beta1 ** self._t
        bias2 = 1 - self.beta2 ** self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            m *= self.beta1
            m += (1 - self.beta1) * p.grad
            v *= self.beta2
            v += (1 - self.beta2) * (p.grad ** 2)
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()
