"""Minimal reverse-mode automatic differentiation over numpy arrays.

The paper implements its agent in JAX; here a small tape-based autodiff
engine provides just the operations the GNN encoder and the PPO heads need
(dense algebra, elementwise nonlinearities, segment operations for message
passing, and the reductions used by the PPO loss).  Everything is vectorised
numpy — no Python loops over elements.

Three engine-level knobs matter for performance:

* :func:`no_grad` — a context manager under which no autograd tape is
  recorded (rollout inference does not need gradients);
* :func:`default_dtype` — the floating dtype new tensors are created with
  (``float64`` by default; training runs in ``float32`` for throughput);
* segment reductions are implemented with a single flattened
  ``np.bincount`` pass instead of ``np.add.at`` (the buffered ``ufunc.at``
  path is notoriously slow).  Both accumulate strictly in input order, so
  float64 results are bit-for-bit identical (``np.bincount`` always
  accumulates in double precision, so float32 results round once at the
  end instead of per addition); :func:`reference_kernels` forces the
  original ``np.add.at`` implementation for equivalence tests and as the
  benchmark baseline.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.lru import LRUCache

__all__ = ["Tensor", "as_tensor", "concat", "stack", "segment_sum",
           "segment_softmax", "segment_max", "no_grad", "is_grad_enabled",
           "default_dtype", "get_default_dtype", "reference_kernels"]

ArrayLike = Union[np.ndarray, float, int, list, tuple]

#: Whether newly created ops record an autograd tape (see :func:`no_grad`).
_GRAD_ENABLED: ContextVar[bool] = ContextVar("grad_enabled", default=True)
#: Floating dtype for newly created tensors (see :func:`default_dtype`).
_DEFAULT_DTYPE: ContextVar[np.dtype] = ContextVar(
    "default_dtype", default=np.dtype(np.float64))
#: Route segment reductions through the original ``np.add.at`` kernels.
_REFERENCE_KERNELS: ContextVar[bool] = ContextVar(
    "reference_kernels", default=False)


@contextmanager
def no_grad():
    """Disable tape recording inside the block.

    Ops executed under ``no_grad()`` compute their forward values as usual
    but never attach parents or backward closures, so inference (e.g. the
    agent's rollout ``act()``) pays no autograd overhead and holds no
    references to intermediate arrays.
    """
    token = _GRAD_ENABLED.set(False)
    try:
        yield
    finally:
        _GRAD_ENABLED.reset(token)


def is_grad_enabled() -> bool:
    """Whether ops currently record an autograd tape."""
    return _GRAD_ENABLED.get()


@contextmanager
def default_dtype(dtype):
    """Create all tensors inside the block with ``dtype``.

    The engine default is ``float64`` (every existing equivalence suite is
    bit-for-bit in double precision); PPO training wraps itself in
    ``default_dtype(np.float32)`` for throughput.  Raw numpy inputs are cast
    on :class:`Tensor` construction, so parameters, features and constants
    all land in the same dtype and no silent promotion to ``float64``
    happens mid-graph.
    """
    token = _DEFAULT_DTYPE.set(np.dtype(dtype))
    try:
        yield
    finally:
        _DEFAULT_DTYPE.reset(token)


def get_default_dtype() -> np.dtype:
    """The dtype new tensors are currently created with."""
    return _DEFAULT_DTYPE.get()


@contextmanager
def reference_kernels():
    """Force the original ``np.add.at`` segment kernels inside the block.

    The fast path (flattened ``np.bincount``) accumulates in the same input
    order, so both kernels produce bit-identical float64 results — this
    context exists so tests can assert exactly that, and so benchmarks can
    measure the seed implementation as their baseline.
    """
    token = _REFERENCE_KERNELS.set(True)
    try:
        yield
    finally:
        _REFERENCE_KERNELS.reset(token)


#: Memo of flattened scatter indices keyed on the *identity* of the segment
#: array (one forward/backward reuses the same ``edge_dst``/``edge_src``
#: arrays many times; building the ``E * D`` flat index vector dominates the
#: bincount otherwise).  Entries hold a reference to the key array, so its
#: ``id`` cannot be recycled while the entry lives; the guard below re-checks
#: identity before trusting a hit.  Process-global (the service's thread
#: backend runs concurrent searches), hence the lock.
_FLAT_IDS_CACHE = LRUCache(64, name="flat_ids")
#: Index arrays seen exactly once; promoted to the cache on their second
#: use.  One-shot gather indices (fresh per PPO minibatch) would otherwise
#: churn the cache and pin large flat-index vectors for zero future hits;
#: the durable arrays (a meta-graph's ``edge_dst``, reused many times per
#: forward) are promoted almost immediately.  Neither cache takes its own
#: lock: the check-then-promote sequences below are compound, so the one
#: module lock guards both caches around each whole sequence.
_FLAT_IDS_SEEN = LRUCache(64, name="flat_ids_seen")
_FLAT_IDS_LOCK = threading.Lock()


def _scatter_add_rows(values: np.ndarray, index: np.ndarray,
                      num_rows: int) -> np.ndarray:
    """``out[index[i]] += values[i]`` accumulating strictly in input order.

    Implemented as one flattened ``np.bincount`` pass (a tight C loop) in
    place of ``np.add.at``, whose buffered fancy-indexing path dispatches
    per element.  Both iterate ``i = 0..len-1`` adding into the target
    bucket, so in float64 partial sums round identically and the results
    are bit-for-bit equal.  (In float32, bincount accumulates in double
    and rounds once at the end — at least as accurate, but not bit-equal
    to per-addition float32 rounding.)
    """
    if _REFERENCE_KERNELS.get():
        out = np.zeros((num_rows,) + values.shape[1:], dtype=values.dtype)
        np.add.at(out, index, values)
        return out
    if values.ndim == 1:
        out = np.bincount(index, weights=values, minlength=num_rows)
        return out.astype(values.dtype, copy=False)
    cols = int(np.prod(values.shape[1:]))
    flat = values.reshape(values.shape[0], cols)
    if cols == 1:
        # Attention logits and the like: a plain bincount on the raw index.
        out = np.bincount(index, weights=flat[:, 0], minlength=num_rows)
        return out.reshape((num_rows,) + values.shape[1:]).astype(
            values.dtype, copy=False)
    cache_key = (id(index), cols)
    with _FLAT_IDS_LOCK:
        entry = _FLAT_IDS_CACHE.get(cache_key)
        if entry is not None and entry[0] is index:
            flat_ids = entry[1]
        else:
            if entry is not None:
                # id() recycled by a new array; evict the stale mapping.
                _FLAT_IDS_CACHE.pop(cache_key)
            entry = None
    if entry is None:
        flat_ids = (index[:, None] * cols
                    + np.arange(cols, dtype=np.int64)[None, :]).ravel()
        with _FLAT_IDS_LOCK:
            if _FLAT_IDS_SEEN.peek(cache_key) is index:
                _FLAT_IDS_SEEN.pop(cache_key)
                _FLAT_IDS_CACHE.put(cache_key, (index, flat_ids))
            else:
                _FLAT_IDS_SEEN.put(cache_key, index)
    out = np.bincount(flat_ids, weights=flat.ravel(),
                      minlength=num_rows * cols)
    return out.reshape((num_rows,) + values.shape[1:]).astype(
        values.dtype, copy=False)


def flat_ids_cache_stats() -> dict:
    """Counters of the process-global flat-index caches (for benchmarks)."""
    with _FLAT_IDS_LOCK:
        stats = _FLAT_IDS_CACHE.stats()
        stats.update(_FLAT_IDS_SEEN.stats())
    return stats


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum away leading broadcast dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, dim in enumerate(shape):
        if dim == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array plus gradient bookkeeping."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data: ArrayLike, requires_grad: bool = False, name: str = "",
                 dtype=None):
        self.data = np.asarray(data, dtype=dtype or _DEFAULT_DTYPE.get())
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # -- basic protocol -----------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def numpy(self) -> np.ndarray:
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False,
                      dtype=self.data.dtype)

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    # -- graph construction ---------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        out = Tensor(data)
        out.requires_grad = (_GRAD_ENABLED.get()
                             and any(p.requires_grad for p in parents))
        if out.requires_grad:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype),
                            self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Back-propagate from this tensor (must be scalar unless grad given)."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without grad requires a scalar tensor")
            grad = np.ones_like(self.data)
        # Topological order of the autodiff graph.
        order: List[Tensor] = []
        visited = set()

        def visit(t: "Tensor") -> None:
            if id(t) in visited or not t.requires_grad:
                return
            visited.add(id(t))
            for p in t._parents:
                visit(p)
            order.append(t)

        visit(self)
        self._accumulate(grad)
        for t in reversed(order):
            if t._backward is not None and t.grad is not None:
                t._backward(t.grad)

    def zero_grad(self) -> None:
        self.grad = None

    # -- arithmetic ------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(grad):
            self._accumulate(grad)
            other._accumulate(grad)
        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad):
            self._accumulate(-grad)
        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(grad):
            self._accumulate(grad * other.data)
            other._accumulate(grad * self.data)
        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(grad):
            self._accumulate(grad / other.data)
            other._accumulate(-grad * self.data / (other.data ** 2))
        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        out_data = self.data ** exponent

        def backward(grad):
            self._accumulate(grad * exponent * self.data ** (exponent - 1))
        return Tensor._make(out_data, (self,), backward)

    def matmul(self, other: "Tensor") -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(grad):
            self._accumulate(grad @ np.swapaxes(other.data, -1, -2))
            other._accumulate(np.swapaxes(self.data, -1, -2) @ grad)
        return Tensor._make(out_data, (self, other), backward)

    __matmul__ = matmul

    # -- elementwise nonlinearities -----------------------------------------------
    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad):
            self._accumulate(grad * mask)
        return Tensor._make(self.data * mask, (self,), backward)

    def leaky_relu(self, slope: float = 0.2) -> "Tensor":
        mask = self.data > 0
        out_data = np.where(mask, self.data, slope * self.data)

        def backward(grad):
            self._accumulate(grad * np.where(mask, 1.0, slope))
        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad):
            self._accumulate(grad * (1.0 - out_data ** 2))
        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad):
            self._accumulate(grad * out_data * (1.0 - out_data))
        return Tensor._make(out_data, (self,), backward)

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad):
            self._accumulate(grad * out_data)
        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad):
            self._accumulate(grad / self.data)
        return Tensor._make(np.log(self.data), (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad):
            self._accumulate(grad * mask)
        return Tensor._make(np.clip(self.data, low, high), (self,), backward)

    # -- reductions / shape ----------------------------------------------------------
    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))
        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        expanded = self.data.max(axis=axis, keepdims=True)
        mask = (self.data == expanded).astype(np.float64)
        mask = mask / np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)

        def backward(grad):
            g = np.asarray(grad)
            if not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(mask * g)
        return Tensor._make(out_data, (self,), backward)

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        out_data = self.data.reshape(shape)

        def backward(grad):
            self._accumulate(np.asarray(grad).reshape(original))
        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes = axes or tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)
        out_data = np.transpose(self.data, axes)

        def backward(grad):
            self._accumulate(np.transpose(np.asarray(grad), inverse))
        return Tensor._make(out_data, (self,), backward)

    def gather_rows(self, index: np.ndarray) -> "Tensor":
        """Select rows ``self[index]`` (first-axis gather), differentiable."""
        index = np.asarray(index, dtype=np.int64)
        out_data = self.data[index]
        n_rows = self.data.shape[0]

        def backward(grad):
            grad = np.asarray(grad)
            self._accumulate(_scatter_add_rows(grad, index, n_rows))
        return Tensor._make(out_data, (self,), backward)

    def scatter_into(self, shape: Tuple[int, ...], *index_arrays,
                     fill: float = 0.0) -> "Tensor":
        """Scatter this tensor's elements into a ``fill``-initialised array.

        ``data[index_arrays] = self`` — one index array per dimension of
        ``shape``, all positions distinct (each element lands in its own
        slot, so no accumulation happens and the gradient is a plain
        gather).  This is how the agent places per-candidate logits into the
        fixed-size padded action space in one O(n) op.
        """
        index = tuple(np.asarray(ix, dtype=np.int64) for ix in index_arrays)
        data = np.full(shape, fill, dtype=self.data.dtype)
        data[index] = self.data

        def backward(grad):
            self._accumulate(np.asarray(grad)[index])
        return Tensor._make(data, (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - as_tensor(self.data.max(axis=axis, keepdims=True))
        exp = shifted.exp()
        return exp / exp.sum(axis=axis, keepdims=True)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - as_tensor(self.data.max(axis=axis, keepdims=True))
        return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]

        def backward(grad):
            full = np.zeros_like(self.data)
            full[key] = np.asarray(grad)
            self._accumulate(full)
        return Tensor._make(out_data, (self,), backward)


def as_tensor(value: ArrayLike) -> Tensor:
    """Wrap raw data into a non-differentiable :class:`Tensor` if needed."""
    return value if isinstance(value, Tensor) else Tensor(value)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]

    def backward(grad):
        splits = np.cumsum(sizes)[:-1]
        for t, piece in zip(tensors, np.split(np.asarray(grad), splits, axis=axis)):
            t._accumulate(piece)
    return Tensor._make(out_data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stack along a new axis."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        for i, t in enumerate(tensors):
            t._accumulate(np.take(np.asarray(grad), i, axis=axis))
    return Tensor._make(out_data, tensors, backward)


def segment_sum(values: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``values`` into ``num_segments`` buckets given by ``segment_ids``.

    This is the aggregation primitive behind message passing: per-edge
    messages are summed into their destination nodes.
    """
    values = as_tensor(values)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    out_data = _scatter_add_rows(values.data, segment_ids, num_segments)

    def backward(grad):
        values._accumulate(np.asarray(grad)[segment_ids])
    return Tensor._make(out_data, (values,), backward)


def segment_max(values: np.ndarray, segment_ids: np.ndarray,
                num_segments: int) -> np.ndarray:
    """Non-differentiable per-segment maximum (used to stabilise softmax)."""
    out = np.full((num_segments,) + values.shape[1:], -np.inf,
                  dtype=values.dtype)
    np.maximum.at(out, segment_ids, values)
    out[~np.isfinite(out)] = 0.0
    return out


def segment_softmax(logits: Tensor, segment_ids: np.ndarray,
                    num_segments: int) -> Tensor:
    """Softmax of ``logits`` normalised within each segment.

    Used by the GAT layer: attention coefficients are normalised over the
    incoming edges of each destination node.
    """
    logits = as_tensor(logits)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    maxes = segment_max(logits.data, segment_ids, num_segments)
    shifted = logits - Tensor(maxes[segment_ids])
    exp = shifted.exp()
    denom = segment_sum(exp, segment_ids, num_segments)
    denom_per_edge = denom.gather_rows(segment_ids)
    return exp / (denom_per_edge + 1e-12)
