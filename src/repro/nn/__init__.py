"""numpy autodiff engine, dense layers, GNN layers and optimisers."""

from .tensor import (Tensor, as_tensor, concat, default_dtype,
                     get_default_dtype, is_grad_enabled, no_grad,
                     reference_kernels, segment_max, segment_softmax,
                     segment_sum, stack)
from .layers import Linear, MLP, Module, Parameter, fresh_rng
from .optim import Adam, SGD, clip_grad_norm
from .gnn import (BatchedGraphs, GATLayer, GlobalUpdateLayer,
                  GraphEmbeddingNetwork, NodeUpdateLayer)

__all__ = [
    "Tensor", "as_tensor", "concat", "stack", "segment_sum", "segment_softmax",
    "segment_max",
    "no_grad", "is_grad_enabled", "default_dtype", "get_default_dtype",
    "reference_kernels",
    "Linear", "MLP", "Module", "Parameter", "fresh_rng",
    "Adam", "SGD", "clip_grad_norm",
    "BatchedGraphs", "GATLayer", "GlobalUpdateLayer", "GraphEmbeddingNetwork",
    "NodeUpdateLayer",
]
