"""numpy autodiff engine, dense layers, GNN layers and optimisers."""

from .tensor import (Tensor, as_tensor, concat, segment_max, segment_softmax,
                     segment_sum, stack)
from .layers import Linear, MLP, Module, Parameter
from .optim import Adam, SGD, clip_grad_norm
from .gnn import (BatchedGraphs, GATLayer, GlobalUpdateLayer,
                  GraphEmbeddingNetwork, NodeUpdateLayer)

__all__ = [
    "Tensor", "as_tensor", "concat", "stack", "segment_sum", "segment_softmax",
    "segment_max",
    "Linear", "MLP", "Module", "Parameter",
    "Adam", "SGD", "clip_grad_norm",
    "BatchedGraphs", "GATLayer", "GlobalUpdateLayer", "GraphEmbeddingNetwork",
    "NodeUpdateLayer",
]
