"""Graph neural network layers used by the X-RLflow agent.

The architecture follows Section 3.4 of the paper exactly:

1. a *node update layer* that combines each node's one-hot operator encoding
   with the sum of its incoming edge (tensor-shape) attributes — this layer
   learns to approximate per-kernel launch cost (Eq. 6),
2. ``k`` *graph attention (GAT) layers* performing message passing over the
   computation-graph topology (Eq. 7),
3. a *global update layer* aggregating all node representations together with
   the graph-level attribute into one embedding per graph (Eq. 8).

All layers operate on a :class:`BatchedGraphs` structure so that the current
graph and every rewrite candidate (the "meta-graph") are encoded in a single
forward pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .layers import Linear, Module, Parameter, fresh_rng
from .tensor import Tensor, concat, get_default_dtype, segment_softmax, segment_sum

__all__ = ["BatchedGraphs", "NodeUpdateLayer", "GATLayer", "GlobalUpdateLayer",
           "GraphEmbeddingNetwork"]


@dataclass
class BatchedGraphs:
    """A batch of graphs flattened into single node/edge arrays.

    ``graph_ids[i]`` gives the graph index of node ``i``; ``edge_src`` /
    ``edge_dst`` index into the flattened node array.
    """

    node_features: np.ndarray   # [N, F_node]
    edge_features: np.ndarray   # [E, F_edge]
    edge_src: np.ndarray        # [E]
    edge_dst: np.ndarray        # [E]
    graph_ids: np.ndarray       # [N]
    num_graphs: int
    global_features: np.ndarray  # [G, F_global]
    #: Per-dtype memo of converted copies (see :meth:`cast`).
    _cast_cache: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def num_nodes(self) -> int:
        return int(self.node_features.shape[0])

    @property
    def num_edges(self) -> int:
        return int(self.edge_src.shape[0])

    def cast(self, dtype) -> "BatchedGraphs":
        """This batch with feature arrays in ``dtype``, memoised per dtype.

        Observations are encoded once in float64 and re-used many times
        (cached observations, PPO epochs); converting on every forward
        would dominate a float32 run, so the converted copy is kept.
        """
        dtype = np.dtype(dtype)
        if self.node_features.dtype == dtype:
            return self
        cached = self._cast_cache.get(dtype)
        if cached is None:
            cached = BatchedGraphs(
                node_features=self.node_features.astype(dtype),
                edge_features=self.edge_features.astype(dtype),
                edge_src=self.edge_src,
                edge_dst=self.edge_dst,
                graph_ids=self.graph_ids,
                num_graphs=self.num_graphs,
                global_features=self.global_features.astype(dtype),
            )
            self._cast_cache[dtype] = cached
        return cached


class NodeUpdateLayer(Module):
    """Eq. 6: ``h'_i = sigma(W [sum_j e_j || h_i])``."""

    def __init__(self, node_dim: int, edge_dim: int, out_dim: int,
                 rng: Optional[np.random.Generator] = None):
        self.linear = Linear(node_dim + edge_dim, out_dim, rng=rng)

    def forward(self, batch: BatchedGraphs, nodes: Tensor) -> Tensor:
        edge_feats = Tensor(batch.edge_features)
        incoming = segment_sum(edge_feats, batch.edge_dst, batch.num_nodes)
        combined = concat([incoming, nodes], axis=1)
        return self.linear(combined).relu()


class GATLayer(Module):
    """Eq. 7: single-head graph attention layer with residual connection.

    Attention coefficients are computed per edge from the transformed source
    and destination node features and normalised (softmax) over each node's
    incoming edges, following Velickovic et al. (2018).
    """

    def __init__(self, dim: int, rng: Optional[np.random.Generator] = None):
        rng = rng if rng is not None else fresh_rng()
        self.transform = Linear(dim, dim, rng=rng)
        self.attn_src = Parameter(rng.normal(0, 0.1, (dim, 1)), name="attn_src")
        self.attn_dst = Parameter(rng.normal(0, 0.1, (dim, 1)), name="attn_dst")

    def forward(self, batch: BatchedGraphs, nodes: Tensor) -> Tensor:
        h = self.transform(nodes)                       # [N, D]
        if batch.num_edges == 0:
            return (nodes + h.relu()) * 0.5
        # Attention scores as an elementwise product + row reduction rather
        # than ``h @ attn`` (a matvec): BLAS gemv accumulates with a
        # different split per call than row-wise reduction, so matvec
        # results are not row-consistent across subsets of ``h`` — which
        # would make the incremental delta forward (recomputing only dirty
        # rows) impossible to keep bit-for-bit equal to this full pass.
        # ``(h * a).sum(axis=1)`` reduces each row independently, so any
        # row subset reproduces the full result exactly.
        src_scores = (h * self.attn_src.reshape(1, -1)).sum(
            axis=1, keepdims=True)                      # [N, 1]
        dst_scores = (h * self.attn_dst.reshape(1, -1)).sum(
            axis=1, keepdims=True)                      # [N, 1]
        edge_logits = (src_scores.gather_rows(batch.edge_src) +
                       dst_scores.gather_rows(batch.edge_dst)).leaky_relu(0.2)
        alpha = segment_softmax(edge_logits, batch.edge_dst, batch.num_nodes)
        messages = h.gather_rows(batch.edge_src) * alpha
        aggregated = segment_sum(messages, batch.edge_dst, batch.num_nodes)
        # Residual connection keeps nodes with no incoming edges informative.
        return (nodes + aggregated.relu()) * 0.5


class GlobalUpdateLayer(Module):
    """Eq. 8: per-graph readout ``g' = sigma([sum_N h || g] W)``."""

    def __init__(self, node_dim: int, global_dim: int, out_dim: int,
                 rng: Optional[np.random.Generator] = None):
        self.linear = Linear(node_dim + global_dim, out_dim, rng=rng)

    def forward(self, batch: BatchedGraphs, nodes: Tensor) -> Tensor:
        pooled = segment_sum(nodes, batch.graph_ids, batch.num_graphs)
        # Normalise by node count so large graphs do not dominate numerically.
        counts = np.bincount(batch.graph_ids, minlength=batch.num_graphs).astype(np.float64)
        counts = np.maximum(counts, 1.0).reshape(-1, 1)
        pooled = pooled * Tensor(1.0 / counts)
        combined = concat([pooled, Tensor(batch.global_features)], axis=1)
        return self.linear(combined).tanh()


class GraphEmbeddingNetwork(Module):
    """The full encoder: node update, ``k`` GAT layers, global readout."""

    def __init__(self, node_dim: int, edge_dim: int, global_dim: int = 1,
                 hidden_dim: int = 64, embedding_dim: int = 64,
                 num_gat_layers: int = 5, seed: int = 0):
        rng = np.random.default_rng(seed)
        self.node_update = NodeUpdateLayer(node_dim, edge_dim, hidden_dim, rng=rng)
        self.gat_layers = [GATLayer(hidden_dim, rng=rng) for _ in range(num_gat_layers)]
        self.global_update = GlobalUpdateLayer(hidden_dim, global_dim, embedding_dim, rng=rng)
        self.hidden_dim = hidden_dim
        self.embedding_dim = embedding_dim
        self.num_gat_layers = num_gat_layers

    def forward(self, batch: BatchedGraphs) -> Tensor:
        """Return one embedding per graph in the batch: ``[num_graphs, embedding_dim]``."""
        batch = batch.cast(get_default_dtype())
        nodes = Tensor(batch.node_features)
        nodes = self.node_update(batch, nodes)
        for layer in self.gat_layers:
            nodes = layer(batch, nodes)
        return self.global_update(batch, nodes)
