"""Neural-network building blocks on top of the autodiff engine."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["Module", "Parameter", "Linear", "MLP", "fresh_rng"]


def fresh_rng() -> np.random.Generator:
    """An independently seeded generator for a layer built without ``rng``.

    Layers used to default to ``np.random.default_rng(0)``, which meant every
    layer constructed without an explicit generator shared seed 0 and got
    *identical* weights — an MLP whose hidden layers all start equal cannot
    break symmetry.  Entropy-seeded streams keep default-constructed layers
    independent; pass an explicit ``rng`` for reproducibility.
    """
    return np.random.default_rng()


class Parameter(Tensor):
    """A tensor flagged as trainable."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class collecting parameters from attributes and sub-modules."""

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        seen = set()
        for value in self.__dict__.values():
            for p in _extract_params(value):
                if id(p) not in seen:
                    seen.add(id(p))
                    params.append(p)
        return params

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat mapping of parameter index to value (for save/load)."""
        return {str(i): p.data.copy() for i, p in enumerate(self.parameters())}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        params = self.parameters()
        if len(state) != len(params):
            raise ValueError(
                f"state dict has {len(state)} entries, module has {len(params)} parameters")
        for i, p in enumerate(params):
            value = np.asarray(state[str(i)])
            if value.shape != p.data.shape:
                raise ValueError(f"parameter {i} shape mismatch: "
                                 f"{value.shape} vs {p.data.shape}")
            p.data = value.astype(p.data.dtype)

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


def _extract_params(value) -> Iterable[Parameter]:
    if isinstance(value, Parameter):
        yield value
    elif isinstance(value, Module):
        yield from value.parameters()
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _extract_params(item)


class Linear(Module):
    """Dense layer ``y = x @ W + b`` with Glorot initialisation."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        rng = rng if rng is not None else fresh_rng()
        scale = np.sqrt(6.0 / (in_features + out_features))
        self.weight = Parameter(rng.uniform(-scale, scale, (in_features, out_features)),
                                name="weight")
        self.bias = Parameter(np.zeros(out_features), name="bias") if bias else None
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class MLP(Module):
    """Multi-layer perceptron with ReLU activations between hidden layers."""

    def __init__(self, sizes: Sequence[int], activate_final: bool = False,
                 rng: Optional[np.random.Generator] = None):
        if len(sizes) < 2:
            raise ValueError("MLP needs at least input and output sizes")
        rng = rng if rng is not None else fresh_rng()
        self.layers = [Linear(a, b, rng=rng) for a, b in zip(sizes[:-1], sizes[1:])]
        self.activate_final = activate_final

    def forward(self, x: Tensor) -> Tensor:
        for i, layer in enumerate(self.layers):
            x = layer(x)
            if i < len(self.layers) - 1 or self.activate_final:
                x = x.relu()
        return x
