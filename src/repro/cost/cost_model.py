"""TASO-style sum-of-operators cost model.

TASO estimates the quality of a candidate graph by measuring every operator
*in isolation* and summing the measurements.  The paper (Table 1) shows this
deviates from true end-to-end latency by 5–24% because isolated measurement
hides pipeline effects: cold memory traffic, kernel-shape inefficiencies,
runtime fusion and constant folding.

Our :class:`CostModel` reproduces that behaviour by evaluating each operator
on an *idealised* view of the device:

* memory traffic is discounted by a warm-cache factor (operands measured in a
  micro-benchmark are already resident),
* kernel-shape efficiency penalties (grouped convolutions, tiny kernels) are
  not observed,
* graph-level effects (fusion, constant folding) are invisible by
  construction because operators are summed independently.

The true latency is produced by :class:`repro.cost.e2e.E2ESimulator`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional

from ..ir.graph import Graph, GraphDelta, NodeId
from .device import DeviceConfig, SimulatedDevice, default_device
from .op_cost import is_zero_cost, op_flops, op_memory_bytes

__all__ = ["CostModel", "CostBreakdown"]


@dataclass
class CostBreakdown:
    """Per-node cost estimates plus the total."""

    total_ms: float
    per_node_ms: Dict[NodeId, float]

    def top_nodes(self, k: int = 10) -> list[tuple[NodeId, float]]:
        """The ``k`` most expensive nodes, sorted by descending cost."""
        return sorted(self.per_node_ms.items(), key=lambda kv: -kv[1])[:k]


class CostModel:
    """Sum-of-isolated-operator cost model (the TASO baseline signal).

    Parameters
    ----------
    device:
        The simulated device whose raw throughput numbers are used.
    warm_cache_fraction:
        Fraction of memory traffic assumed to hit cache during isolated
        micro-benchmarking.  ``0.8`` means only 80% of true traffic is paid.
    launch_amortisation:
        Fraction of the true kernel-launch overhead that shows up in an
        isolated micro-benchmark (repeated invocations amortise it).
    ignore_elementwise:
        When True, element-wise operators are costed at zero.  PET's cost
        model behaves this way (the paper calls this out); TASO's does not.
    """

    def __init__(self, device: Optional[SimulatedDevice] = None,
                 warm_cache_fraction: float = 0.95,
                 launch_amortisation: float = 0.65,
                 ignore_elementwise: bool = False):
        self.device = device or default_device()
        self.warm_cache_fraction = float(warm_cache_fraction)
        self.launch_amortisation = float(launch_amortisation)
        self.ignore_elementwise = bool(ignore_elementwise)
        # The cost model's idealised device: no kernel-shape penalties.
        cfg = self.device.config
        self._ideal_device = SimulatedDevice(DeviceConfig(
            name=cfg.name + "-idealised",
            flops_per_ms=cfg.flops_per_ms,
            bytes_per_ms=cfg.bytes_per_ms,
            kernel_launch_ms=cfg.kernel_launch_ms * self.launch_amortisation,
            peak_efficiency=cfg.peak_efficiency,
            grouped_conv_efficiency=cfg.peak_efficiency,
            batch_matmul_efficiency=cfg.peak_efficiency,
            small_kernel_efficiency=1.0,
            small_kernel_flops=0.0,
            measurement_noise=0.0,
            # The window-gather pathology is real memory behaviour, not a
            # kernel-shape penalty — the idealised device keeps it.
            pool_gather_efficiency=cfg.pool_gather_efficiency,
        ))
        # Key for per-node cost tables carried on graphs: two cost models
        # with identical parameters share (and may reuse) cached entries.
        self._cache_key = ("node-cost",
                           dataclasses.astuple(self.device.config),
                           self.warm_cache_fraction,
                           self.launch_amortisation,
                           self.ignore_elementwise)

    # ------------------------------------------------------------------
    def node_cost_ms(self, graph: Graph, node_id: NodeId) -> float:
        """Estimated isolated runtime of one node, in milliseconds."""
        node = graph.nodes[node_id]
        if is_zero_cost(node.op_type):
            return 0.0
        inputs = graph.input_specs(node_id)
        flops = op_flops(node.op_type, inputs, node.outputs, node.attrs)
        if self.ignore_elementwise and flops <= sum(o.num_elements for o in node.outputs):
            # Element-wise / trivially cheap kernels ignored (PET behaviour).
            return 0.0
        bytes_moved = op_memory_bytes(node.op_type, inputs, node.outputs, node.attrs)
        bytes_moved *= self.warm_cache_fraction
        return self._ideal_device.kernel_time_ms(node.op_type, flops, bytes_moved)

    def estimate(self, graph: Graph) -> float:
        """Total estimated latency of ``graph`` in milliseconds.

        Always re-derives every node from scratch; the incremental search
        paths use :meth:`estimate_cached` / :meth:`estimate_delta`, which are
        bit-for-bit equal but only recompute mutated nodes.
        """
        return self.breakdown(graph).total_ms

    def breakdown(self, graph: Graph) -> CostBreakdown:
        """Per-node cost estimates for ``graph``."""
        per_node = {nid: self.node_cost_ms(graph, nid) for nid in graph.nodes}
        return CostBreakdown(total_ms=sum(per_node.values()), per_node_ms=per_node)

    # ------------------------------------------------------------------
    # Incremental estimation
    # ------------------------------------------------------------------
    def estimate_cached(self, graph: Graph) -> float:
        """Like :meth:`estimate`, but reusing per-node costs carried on the
        graph.

        ``Graph.copy`` hands the parent's per-node cost table to the copy and
        graph mutations invalidate exactly the affected entries, so costing a
        rewrite candidate only recomputes the handful of nodes its rule
        touched.  Values and summation order are identical to
        :meth:`estimate`, so the result is bit-for-bit equal.
        """
        table = graph.node_cache(self._cache_key)
        node_cost = self.node_cost_ms
        total = 0.0
        for nid in graph.nodes:
            value = table.get(nid)
            if value is None:
                value = node_cost(graph, nid)
                table[nid] = value
            total += value
        return total

    def estimate_delta(self, parent: Graph, child: Graph,
                       parent_cost: Optional[float] = None,
                       delta: Optional[GraphDelta] = None) -> float:
        """Cost ``child`` as ``parent``'s total adjusted by the mutation delta.

        Conceptually: parent cost, minus the costs of removed/rewired nodes,
        plus the costs of added/rewired nodes.  The adjustment is applied to
        the parent's *per-node* cost table rather than to the scalar total so
        the result is bit-for-bit equal to a full :meth:`estimate` of the
        child (same per-node values, same summation order).

        ``delta`` defaults to the child's recorded mutation delta (see
        :meth:`Graph.mutation_delta`); without one the child is fully
        re-estimated.  ``parent_cost``, when given, short-circuits the empty
        delta (no mutations — the graphs are identical).
        """
        delta = delta if delta is not None else child.mutation_delta()
        if delta is None:
            return self.estimate(child)
        if parent_cost is not None and delta.is_empty:
            return parent_cost
        table = child.node_cache(self._cache_key)
        if not table:
            # The child did not carry the parent's table (e.g. it was built
            # outside ``Graph.copy``): seed the unchanged nodes from the
            # parent so only the delta is recomputed below.
            parent_table = parent.node_cache(self._cache_key)
            changed = delta.changed_nodes()
            for nid in child.nodes:
                if nid in changed:
                    continue
                value = parent_table.get(nid)
                if value is not None:
                    table[nid] = value
        return self.estimate_cached(child)

    def __repr__(self) -> str:
        return (f"CostModel(device={self.device.config.name!r}, "
                f"warm_cache_fraction={self.warm_cache_fraction})")
