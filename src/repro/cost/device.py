"""Analytical model of the execution device.

The paper measures end-to-end inference latency on an NVIDIA GTX 1080 with
CUDA/CuDNN.  We do not have a GPU, so the device is simulated: each kernel's
runtime is ``max(compute time, memory time) + launch overhead`` with per-op
efficiency factors.  The numbers are loosely calibrated to a GTX 1080-class
part (8.9 TFLOP/s peak, ~320 GB/s, ~5 µs kernel launch) but the *absolute*
values are not the point — what matters is that the simulator exposes the
same second-order effects the paper's evaluation hinges on:

* per-kernel launch overhead (many small kernels are slower than their
  FLOP count suggests),
* imperfect efficiency for small or oddly shaped kernels (grouped
  convolutions, tiny matmuls),
* elementwise producer-consumer fusion at runtime,
* constant folding of weight-only subgraphs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..ir.ops import OpType

__all__ = ["DeviceConfig", "SimulatedDevice", "GTX1080", "default_device"]


@dataclass(frozen=True)
class DeviceConfig:
    """Static capabilities of a simulated accelerator."""

    name: str = "sim-gtx1080"
    #: Peak single-precision throughput in FLOPs per millisecond.
    flops_per_ms: float = 8.9e9
    #: Main memory bandwidth in bytes per millisecond.
    bytes_per_ms: float = 3.2e8
    #: Per-kernel launch overhead in milliseconds.
    kernel_launch_ms: float = 0.003
    #: Fraction of peak throughput reached by a well-shaped large kernel.
    peak_efficiency: float = 0.72
    #: Efficiency penalty factor for grouped / depthwise convolutions, which
    #: map poorly onto dense tensor cores.
    grouped_conv_efficiency: float = 0.25
    #: Efficiency for batched (strided) matmuls relative to plain GEMM.
    batch_matmul_efficiency: float = 0.60
    #: Multiplier applied to the arithmetic cost of kernels whose working set
    #: is small — they cannot saturate the device.
    small_kernel_efficiency: float = 0.55
    #: FLOP threshold below which a kernel counts as "small".
    small_kernel_flops: float = 2.0e6
    #: Relative standard deviation of measurement noise for end-to-end runs.
    measurement_noise: float = 0.004


#: Default device roughly matching the paper's GTX 1080 testbed.
GTX1080 = DeviceConfig()


class SimulatedDevice:
    """Computes kernel runtimes for a :class:`DeviceConfig`.

    The device distinguishes between *isolated* execution (what a cost model
    measuring one operator at a time would see — inputs resident in cache,
    launch overhead partially hidden) and *end-to-end* execution (all
    overheads and memory traffic paid for real).  This split is what produces
    the cost-model vs end-to-end discrepancy reported in Table 1 of the
    paper.
    """

    def __init__(self, config: Optional[DeviceConfig] = None):
        self.config = config or GTX1080

    # ------------------------------------------------------------------
    def _efficiency(self, op_type: OpType, flops: float) -> float:
        cfg = self.config
        eff = cfg.peak_efficiency
        if op_type in (OpType.GROUP_CONV2D, OpType.DEPTHWISE_CONV2D):
            eff *= cfg.grouped_conv_efficiency / cfg.peak_efficiency
        elif op_type is OpType.BATCH_MATMUL:
            eff *= cfg.batch_matmul_efficiency / cfg.peak_efficiency
        if flops < cfg.small_kernel_flops:
            eff *= cfg.small_kernel_efficiency
        return max(eff, 1e-3)

    def kernel_time_ms(self, op_type: OpType, flops: float, bytes_moved: float,
                       include_launch: bool = True) -> float:
        """Runtime of a single kernel on the device, in milliseconds."""
        cfg = self.config
        eff = self._efficiency(op_type, flops)
        compute_ms = flops / (cfg.flops_per_ms * eff) if flops > 0 else 0.0
        memory_ms = bytes_moved / cfg.bytes_per_ms if bytes_moved > 0 else 0.0
        time_ms = max(compute_ms, memory_ms)
        if include_launch:
            time_ms += cfg.kernel_launch_ms
        return time_ms

    def launch_overhead_ms(self) -> float:
        return self.config.kernel_launch_ms

    def with_config(self, **overrides) -> "SimulatedDevice":
        """Return a device with some configuration fields replaced."""
        return SimulatedDevice(replace(self.config, **overrides))

    def __repr__(self) -> str:
        return f"SimulatedDevice({self.config.name!r})"


def default_device() -> SimulatedDevice:
    """The device used throughout the evaluation (GTX 1080-like)."""
    return SimulatedDevice(GTX1080)
