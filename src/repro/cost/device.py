"""Analytical model of the execution device.

The paper measures end-to-end inference latency on an NVIDIA GTX 1080 with
CUDA/CuDNN.  We do not have a GPU, so the device is simulated: each kernel's
runtime is ``max(compute time, memory time) + launch overhead`` with per-op
efficiency factors.  The numbers are loosely calibrated to a GTX 1080-class
part (8.9 TFLOP/s peak, ~320 GB/s, ~5 µs kernel launch) but the *absolute*
values are not the point — what matters is that the simulator exposes the
same second-order effects the paper's evaluation hinges on:

* per-kernel launch overhead (many small kernels are slower than their
  FLOP count suggests),
* imperfect efficiency for small or oddly shaped kernels (grouped
  convolutions, tiny matmuls),
* elementwise producer-consumer fusion at runtime,
* constant folding of weight-only subgraphs.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Optional, Tuple, Union

from ..ir.ops import OpType

__all__ = ["DeviceConfig", "SimulatedDevice", "GTX1080", "default_device",
           "preset_path", "load_preset", "clear_preset_cache"]


@dataclass(frozen=True)
class DeviceConfig:
    """Static capabilities of a simulated accelerator."""

    name: str = "sim-gtx1080"
    #: Peak single-precision throughput in FLOPs per millisecond.
    flops_per_ms: float = 8.9e9
    #: Main memory bandwidth in bytes per millisecond.
    bytes_per_ms: float = 3.2e8
    #: Per-kernel launch overhead in milliseconds.
    kernel_launch_ms: float = 0.003
    #: Fraction of peak throughput reached by a well-shaped large kernel.
    peak_efficiency: float = 0.72
    #: Efficiency penalty factor for grouped / depthwise convolutions, which
    #: map poorly onto dense tensor cores.
    grouped_conv_efficiency: float = 0.25
    #: Efficiency for batched (strided) matmuls relative to plain GEMM.
    batch_matmul_efficiency: float = 0.60
    #: Multiplier applied to the arithmetic cost of kernels whose working set
    #: is small — they cannot saturate the device.
    small_kernel_efficiency: float = 0.55
    #: FLOP threshold below which a kernel counts as "small".
    small_kernel_flops: float = 2.0e6
    #: Relative standard deviation of measurement noise for end-to-end runs.
    measurement_noise: float = 0.004
    #: Fraction of peak memory bandwidth the strided window-gather access
    #: pattern of truncated-window pooling achieves (overlapping windows
    #: defeat both streaming prefetch and cache-line reuse).  Applied to
    #: the memory term of MaxPool2D/AvgPool2D kernels, whose traffic
    #: :func:`repro.cost.op_cost.op_memory_bytes` counts as the full
    #: per-window gather.  0.10 was fitted against the numpy backend's
    #: NaN-padded window kernels (it folds in the nan-reduction tax);
    #: it brings the MaxPool2D measured/sim ratio from ~27x to ~1.4x.
    pool_gather_efficiency: float = 0.10


#: Default device roughly matching the paper's GTX 1080 testbed.
GTX1080 = DeviceConfig()


class SimulatedDevice:
    """Computes kernel runtimes for a :class:`DeviceConfig`.

    The device distinguishes between *isolated* execution (what a cost model
    measuring one operator at a time would see — inputs resident in cache,
    launch overhead partially hidden) and *end-to-end* execution (all
    overheads and memory traffic paid for real).  This split is what produces
    the cost-model vs end-to-end discrepancy reported in Table 1 of the
    paper.
    """

    def __init__(self, config: Optional[DeviceConfig] = None):
        self.config = config or GTX1080

    # ------------------------------------------------------------------
    def _efficiency(self, op_type: OpType, flops: float) -> float:
        cfg = self.config
        eff = cfg.peak_efficiency
        if op_type in (OpType.GROUP_CONV2D, OpType.DEPTHWISE_CONV2D):
            eff *= cfg.grouped_conv_efficiency / cfg.peak_efficiency
        elif op_type is OpType.BATCH_MATMUL:
            eff *= cfg.batch_matmul_efficiency / cfg.peak_efficiency
        if flops < cfg.small_kernel_flops:
            eff *= cfg.small_kernel_efficiency
        return max(eff, 1e-3)

    def kernel_time_ms(self, op_type: OpType, flops: float, bytes_moved: float,
                       include_launch: bool = True) -> float:
        """Runtime of a single kernel on the device, in milliseconds."""
        cfg = self.config
        eff = self._efficiency(op_type, flops)
        compute_ms = flops / (cfg.flops_per_ms * eff) if flops > 0 else 0.0
        bandwidth = cfg.bytes_per_ms
        if op_type in (OpType.MAXPOOL2D, OpType.AVGPOOL2D):
            bandwidth *= max(cfg.pool_gather_efficiency, 1e-3)
        memory_ms = bytes_moved / bandwidth if bytes_moved > 0 else 0.0
        time_ms = max(compute_ms, memory_ms)
        if include_launch:
            time_ms += cfg.kernel_launch_ms
        return time_ms

    def launch_overhead_ms(self) -> float:
        return self.config.kernel_launch_ms

    def with_config(self, **overrides) -> "SimulatedDevice":
        """Return a device with some configuration fields replaced."""
        return SimulatedDevice(replace(self.config, **overrides))

    def __repr__(self) -> str:
        return f"SimulatedDevice({self.config.name!r})"


# ---------------------------------------------------------------------------
# Persisted calibration presets
# ---------------------------------------------------------------------------
#
# ``repro.exec.calibrate.save_preset`` writes the fitted device constants to
# a small JSON file; ``default_device`` picks it up on the next start so a
# one-off calibration run keeps paying off.  ``REPRO_DEVICE_PRESET`` selects
# the file ("off" disables loading entirely, e.g. for hermetic test runs).

_DEFAULT_PRESET = Path.home() / ".cache" / "repro" / "device_preset.json"

#: (resolved path, mtime_ns) -> loaded device, so the hot ``default_device``
#: call stats the file instead of re-parsing it.
_preset_cache: dict = {}


def preset_path() -> Optional[Path]:
    """The preset file ``default_device`` consults, or None when disabled."""
    env = os.environ.get("REPRO_DEVICE_PRESET", "")
    if env.strip().lower() == "off":
        return None
    return Path(env) if env else _DEFAULT_PRESET


def load_preset(path: Union[str, Path]) -> SimulatedDevice:
    """Load a device preset written by ``save_preset``.

    Unknown keys are ignored (forward compatibility); missing ones keep
    their :class:`DeviceConfig` defaults.
    """
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    config = payload.get("device", payload)
    fields = {f.name for f in dataclasses.fields(DeviceConfig)}
    kwargs = {k: v for k, v in config.items() if k in fields}
    return SimulatedDevice(DeviceConfig(**kwargs))


def clear_preset_cache() -> None:
    """Drop the memoised preset (tests; or after deleting the file)."""
    _preset_cache.clear()


def _preset_device() -> Optional[SimulatedDevice]:
    path = preset_path()
    if path is None:
        return None
    try:
        key: Tuple[str, int] = (str(path), path.stat().st_mtime_ns)
    except OSError:
        return None
    if key not in _preset_cache:
        try:
            _preset_cache[key] = load_preset(path)
        except (OSError, ValueError, TypeError):
            # A corrupt preset must never take the toolchain down.
            _preset_cache[key] = None
    return _preset_cache[key]


def default_device() -> SimulatedDevice:
    """The device used throughout the evaluation.

    A persisted calibration preset (see :func:`preset_path`) takes
    precedence; otherwise the GTX 1080-like defaults apply.
    """
    return _preset_device() or SimulatedDevice(GTX1080)
