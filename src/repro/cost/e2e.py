"""End-to-end inference latency simulator.

This plays the role of "actually running the optimised graph on the GPU" in
the paper.  In addition to the raw per-kernel costs it models the pipeline
effects that a sum-of-operators cost model cannot see:

* **Constant folding** — any node whose transitive inputs are all weights or
  constants is computed once ahead of time and contributes nothing to
  inference latency.  The paper attributes the 40% ViT win to exactly this
  effect surfacing after a sequence of rewrites.
* **Elementwise epilogue fusion** — an element-wise / normalisation operator
  that directly consumes the output of a matmul/convolution with no other
  consumer is executed as a kernel epilogue: no extra launch, no intermediate
  round-trip through memory.
* **Kernel-shape efficiency** — grouped and depthwise convolutions, batched
  matmuls and very small kernels run below peak efficiency, unlike in the
  idealised cost-model view.
* **Measurement noise** — repeated measurements jitter by a configurable
  relative standard deviation, so downstream experiments can report mean and
  standard deviation over 5 runs exactly as the paper does.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from ..ir.graph import Graph, NodeId
from ..ir.ops import (ELEMENTWISE_BINARY, ELEMENTWISE_UNARY, OpType)
from .device import SimulatedDevice, default_device
from .op_cost import is_zero_cost, op_flops, op_memory_bytes

__all__ = ["E2ESimulator", "E2EMeasurement", "LatencyProfile"]

#: Operators that a runtime like cuDNN/TensorRT will fuse into the producing
#: kernel's epilogue when they are the sole consumer.
_FUSABLE_EPILOGUES = (ELEMENTWISE_UNARY | ELEMENTWISE_BINARY |
                      {OpType.BATCHNORM, OpType.SOFTMAX})

#: Producers that expose an epilogue slot.
_EPILOGUE_PRODUCERS = {
    OpType.CONV2D, OpType.GROUP_CONV2D, OpType.DEPTHWISE_CONV2D,
    OpType.MATMUL, OpType.BATCH_MATMUL, OpType.FUSED_MATMUL_ADD,
    OpType.FUSED_CONV_BN, OpType.FUSED_CONV_RELU, OpType.FUSED_CONV_BN_RELU,
    OpType.ENLARGE_CONV,
}

#: Per-node (flops, bytes) memo table carried on graphs.  Device-independent
#: — flop and byte counts only depend on the node's specs — so every
#: simulator (and the whole process) shares one table per graph.
_OPCOST_CACHE_KEY = "op-flops-bytes"


@dataclass
class LatencyProfile:
    """Detailed account of one simulated inference pass."""

    total_ms: float
    kernel_count: int
    folded_nodes: Set[NodeId] = field(default_factory=set)
    fused_nodes: Set[NodeId] = field(default_factory=set)
    per_node_ms: Dict[NodeId, float] = field(default_factory=dict)


@dataclass
class E2EMeasurement:
    """Mean and standard deviation over repeated simulated runs."""

    mean_ms: float
    std_ms: float
    samples: List[float] = field(default_factory=list)


class E2ESimulator:
    """Simulated end-to-end inference latency of a computation graph."""

    def __init__(self, device: Optional[SimulatedDevice] = None,
                 enable_constant_folding: bool = True,
                 enable_runtime_fusion: bool = False,
                 seed: int = 0):
        # Runtime epilogue fusion defaults to *off*: in the TASO/X-RLflow
        # setting, operator fusion is something the rewrite rules introduce
        # explicitly (FusedConvBNRelu, FusedMatMulAdd, ...), not something the
        # runtime performs behind the optimiser's back.  The flag exists for
        # ablation studies of how much a fusion-capable runtime would shrink
        # the rewrite system's headroom.
        self.device = device or default_device()
        self.enable_constant_folding = bool(enable_constant_folding)
        self.enable_runtime_fusion = bool(enable_runtime_fusion)
        self._rng = np.random.default_rng(seed)
        # Whole-graph latency memo key: two simulators with the same device
        # and the same pipeline-effect switches produce the same latency.
        self._latency_key = ("e2e-latency",
                             dataclasses.astuple(self.device.config),
                             self.enable_constant_folding,
                             self.enable_runtime_fusion)

    # ------------------------------------------------------------------
    # Graph analysis
    # ------------------------------------------------------------------
    def constant_foldable_nodes(self, graph: Graph) -> Set[NodeId]:
        """Nodes whose transitive inputs are all weights/constants.

        These can be evaluated once before deployment, so they cost nothing
        at inference time.  Source nodes themselves are excluded (they never
        launch kernels anyway).
        """
        foldable: Set[NodeId] = set()
        constant_valued: Set[NodeId] = set()
        for nid in graph.topological_order():
            node = graph.nodes[nid]
            if node.op_type in (OpType.WEIGHT, OpType.CONSTANT):
                constant_valued.add(nid)
                continue
            if node.op_type in (OpType.INPUT, OpType.OUTPUT):
                continue
            preds = graph.predecessors(nid)
            if preds and all(p in constant_valued for p in preds):
                constant_valued.add(nid)
                foldable.add(nid)
        return foldable

    def fusable_nodes(self, graph: Graph, folded: Set[NodeId]) -> Set[NodeId]:
        """Element-wise nodes fused into their producer's kernel epilogue."""
        fused: Set[NodeId] = set()
        for nid in graph.topological_order():
            node = graph.nodes[nid]
            if node.op_type not in _FUSABLE_EPILOGUES or nid in folded:
                continue
            data_preds = [
                p for p in graph.predecessors(nid)
                if not graph.nodes[p].is_source and p not in folded
            ]
            if len(data_preds) != 1:
                continue
            producer = data_preds[0]
            producer_node = graph.nodes[producer]
            producer_is_epilogue_host = (
                producer_node.op_type in _EPILOGUE_PRODUCERS
                or producer in fused  # chains of elementwise ops fuse through
            )
            if not producer_is_epilogue_host:
                continue
            # The producer's output must have a single consumer, otherwise the
            # intermediate tensor has to be materialised anyway.
            if len(graph.successors(producer)) != 1:
                continue
            fused.add(nid)
        return fused

    # ------------------------------------------------------------------
    # Latency
    # ------------------------------------------------------------------
    def profile(self, graph: Graph) -> LatencyProfile:
        """Simulate one inference pass and return a detailed profile."""
        folded = self.constant_foldable_nodes(graph) if self.enable_constant_folding else set()
        fused = self.fusable_nodes(graph, folded) if self.enable_runtime_fusion else set()

        total = 0.0
        kernels = 0
        per_node: Dict[NodeId, float] = {}
        opcost_table = graph.node_cache(_OPCOST_CACHE_KEY)
        for nid in graph.topological_order():
            node = graph.nodes[nid]
            if is_zero_cost(node.op_type) or nid in folded:
                per_node[nid] = 0.0
                continue
            cached = opcost_table.get(nid)
            if cached is None:
                inputs = graph.input_specs(nid)
                cached = (
                    op_flops(node.op_type, inputs, node.outputs, node.attrs),
                    op_memory_bytes(node.op_type, inputs, node.outputs,
                                    node.attrs),
                )
                opcost_table[nid] = cached
            flops, bytes_moved = cached
            if nid in fused:
                # Epilogue: arithmetic rides along with the producer kernel;
                # the intermediate tensor never leaves registers/shared memory.
                time_ms = flops / (self.device.config.flops_per_ms *
                                   self.device.config.peak_efficiency)
            else:
                time_ms = self.device.kernel_time_ms(node.op_type, flops, bytes_moved)
                kernels += 1
            per_node[nid] = time_ms
            total += time_ms
        return LatencyProfile(total_ms=total, kernel_count=kernels,
                              folded_nodes=folded, fused_nodes=fused,
                              per_node_ms=per_node)

    def latency_ms(self, graph: Graph) -> float:
        """Deterministic (noise-free) end-to-end latency in milliseconds.

        Memoised on the graph until its next mutation — the RL environment
        measures the same graph several times per step (reward, info dict,
        best-graph tracking) and only the first call pays for the profile.
        """
        return graph.memo(self._latency_key,
                          lambda: self.profile(graph).total_ms)

    def measure(self, graph: Graph, repeats: int = 5) -> E2EMeasurement:
        """Simulate ``repeats`` noisy measurements, like timing real runs."""
        base = self.latency_ms(graph)
        noise = self.device.config.measurement_noise
        samples = [
            float(base * (1.0 + self._rng.normal(0.0, noise)))
            for _ in range(max(1, repeats))
        ]
        return E2EMeasurement(mean_ms=float(np.mean(samples)),
                              std_ms=float(np.std(samples)),
                              samples=samples)

    def __repr__(self) -> str:
        return (f"E2ESimulator(device={self.device.config.name!r}, "
                f"folding={self.enable_constant_folding}, "
                f"runtime_fusion={self.enable_runtime_fusion})")
