"""Cost modelling and end-to-end latency simulation.

Two signals are provided:

* :class:`CostModel` — the TASO-style sum-of-isolated-operators estimate.
* :class:`E2ESimulator` — the "ground truth" end-to-end latency, with
  constant folding, epilogue fusion, kernel-shape efficiencies and
  measurement noise.

The gap between them is the central quantitative observation the paper
builds on (its Table 1), and is what the RL agent exploits by using the
end-to-end signal as its reward.
"""

from .device import DeviceConfig, GTX1080, SimulatedDevice, default_device
from .op_cost import is_zero_cost, op_flops, op_memory_bytes
from .cost_model import CostBreakdown, CostModel
from .e2e import E2EMeasurement, E2ESimulator, LatencyProfile

__all__ = [
    "DeviceConfig", "GTX1080", "SimulatedDevice", "default_device",
    "is_zero_cost", "op_flops", "op_memory_bytes",
    "CostBreakdown", "CostModel",
    "E2EMeasurement", "E2ESimulator", "LatencyProfile",
]
