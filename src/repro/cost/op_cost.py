"""Per-operator arithmetic and memory-traffic estimates.

These are the primitives both the TASO-style cost model and the end-to-end
simulator are built from.  FLOP counts follow the standard conventions
(2 * M * N * K for matmul, 2 * K_h * K_w * C_in * C_out * H_out * W_out for
convolution, etc.); memory traffic counts one read per input element and one
write per output element.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..ir.ops import ELEMENTWISE_BINARY, ELEMENTWISE_UNARY, OpType
from ..ir.tensor import TensorSpec

__all__ = ["op_flops", "op_memory_bytes", "is_zero_cost"]

#: Operators that perform no device work at inference time (metadata only or
#: resolved at graph-compile time).
_ZERO_COST_OPS = {
    OpType.INPUT, OpType.WEIGHT, OpType.CONSTANT, OpType.OUTPUT,
    OpType.NOOP, OpType.IDENTITY, OpType.DROPOUT,
}

#: Data-movement operators whose cost is purely memory traffic.  CUSTOM is
#: here by definition: its executed semantics *are* the pass-through copy,
#: so the calibrated bytes/ms constant prices it (the "calibrated
#: pass-through" costing of imported unknown ops).
_MOVEMENT_OPS = {
    OpType.RESHAPE, OpType.TRANSPOSE, OpType.CONCAT, OpType.SPLIT,
    OpType.SLICE, OpType.SQUEEZE, OpType.UNSQUEEZE, OpType.FLATTEN,
    OpType.PAD, OpType.CAST, OpType.GATHER, OpType.EMBEDDING,
    OpType.CUSTOM,
}


def is_zero_cost(op_type: OpType) -> bool:
    """True if the operator launches no kernel at inference time."""
    return op_type in _ZERO_COST_OPS


def _output_elements(outputs: Sequence[TensorSpec]) -> int:
    return sum(o.num_elements for o in outputs)


def op_flops(op_type: OpType, inputs: Sequence[TensorSpec],
             outputs: Sequence[TensorSpec],
             attrs: Mapping[str, object] | None = None) -> float:
    """Floating-point operations performed by one application of ``op_type``."""
    attrs = attrs or {}
    if op_type in _ZERO_COST_OPS:
        return 0.0
    out_elems = _output_elements(outputs)

    if op_type in (OpType.MATMUL, OpType.BATCH_MATMUL, OpType.FUSED_MATMUL_ADD):
        a, b = inputs[0], inputs[1]
        k = a.shape.dims[-1]
        flops = 2.0 * out_elems * k
        if op_type is OpType.FUSED_MATMUL_ADD:
            flops += out_elems
        return flops

    if op_type in (OpType.CONV2D, OpType.GROUP_CONV2D, OpType.DEPTHWISE_CONV2D,
                   OpType.ENLARGE_CONV, OpType.FUSED_CONV_BN,
                   OpType.FUSED_CONV_RELU, OpType.FUSED_CONV_BN_RELU):
        weight = inputs[1]
        # weight is [C_out, C_in/groups, kh, kw]; per output element we do
        # 2 * C_in/groups * kh * kw FLOPs.
        per_out = 2.0 * weight.shape.dims[1] * weight.shape.dims[2] * weight.shape.dims[3]
        flops = per_out * out_elems
        if attrs.get("algorithm") == "winograd":
            # Winograd F(4x4, 3x3) — the variant cuDNN uses for dense 3x3
            # convolutions — performs ~4x fewer multiplications.
            flops /= 4.0
        if op_type in (OpType.FUSED_CONV_BN, OpType.FUSED_CONV_BN_RELU):
            flops += 4.0 * out_elems  # folded scale + shift
        if op_type in (OpType.FUSED_CONV_RELU, OpType.FUSED_CONV_BN_RELU):
            flops += out_elems
        return flops

    if op_type in (OpType.MAXPOOL2D, OpType.AVGPOOL2D):
        kernel = int(attrs.get("kernel", 2))
        return float(out_elems * kernel * kernel)
    if op_type is OpType.GLOBAL_AVGPOOL:
        return float(inputs[0].num_elements)

    if op_type in ELEMENTWISE_BINARY:
        return float(out_elems)
    if op_type in ELEMENTWISE_UNARY:
        # transcendental activations cost a handful of FLOPs per element
        per_elem = {OpType.RELU: 1.0, OpType.IDENTITY: 0.0, OpType.CAST: 0.0,
                    OpType.DROPOUT: 0.0}.get(op_type, 8.0)
        return per_elem * out_elems

    if op_type is OpType.BATCHNORM:
        return 4.0 * out_elems
    if op_type is OpType.LAYERNORM:
        return 8.0 * out_elems
    if op_type is OpType.SOFTMAX:
        return 10.0 * out_elems
    if op_type in (OpType.REDUCE_SUM, OpType.REDUCE_MEAN, OpType.REDUCE_MAX):
        return float(inputs[0].num_elements)

    if op_type in _MOVEMENT_OPS:
        return 0.0
    return float(out_elems)


def op_memory_bytes(op_type: OpType, inputs: Sequence[TensorSpec],
                    outputs: Sequence[TensorSpec],
                    attrs: Mapping[str, object] | None = None) -> float:
    """Bytes read plus written by one application of ``op_type``."""
    if op_type in _ZERO_COST_OPS:
        return 0.0
    read = sum(i.size_bytes for i in inputs)
    written = sum(o.size_bytes for o in outputs)

    if op_type in (OpType.MAXPOOL2D, OpType.AVGPOOL2D) and inputs:
        # Truncated-window pooling is memory-pathological: the kernel does
        # not stream the input once — it *gathers* every kernel×kernel
        # window per output element (overlapping windows re-read the same
        # input elements up to kernel² times), after first materialising a
        # padded copy of the input for the edge windows.  Counting only
        # input+output bytes under-states the traffic by ~kernel², which is
        # exactly the measured/sim gap BENCH_exec used to show for
        # MaxPool2D (~27x for the common 3×3 windows).
        attrs = attrs or {}
        kernel = int(attrs.get("kernel", 2))
        elem_bytes = (inputs[0].size_bytes / inputs[0].num_elements
                      if inputs[0].num_elements else 4.0)
        gathered = _output_elements(outputs) * kernel * kernel * elem_bytes
        padded_copy = 2.0 * inputs[0].size_bytes  # pad read + write
        return float(gathered + padded_copy + written)

    return float(read + written)
