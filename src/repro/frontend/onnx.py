"""ONNX frontend: import foreign models into the IR and export back.

:func:`import_model` walks a :class:`~repro.frontend.serialize.ModelSpec`
node list in order, dispatching each node through the declarative bridge
table (:mod:`repro.frontend.ops_bridge`).  Ops outside the table — or
configurations a bridge cannot express faithfully — degrade gracefully to
opaque ``Custom`` nodes with *declared* output shapes: they execute as
counted pass-throughs, no rewrite rule matches into them, and every
fallback is recorded in the :class:`ImportReport` so coverage holes are
visible, never silent.

:func:`to_spec` / :func:`to_onnx` export IR graphs the other way, using
standard ONNX ops wherever the inverse bridge provably reconstructs the
node attr-for-attr and the ``ai.repro`` custom domain for everything else
(fused ops, ``EnlargeConv``, rank-2 ``GlobalAvgPool``, ``Custom``).  The
invariant the round-trip tests enforce:
``structural_hash(import(export(g))) == structural_hash(g)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple, Union

from ..ir.graph import Graph, NodeId
from ..ir.ops import OpType
from .ops_bridge import BRIDGE, ImportContext, UnsupportedOp
from .serialize import (DEFAULT_OPSET, REPRO_DOMAIN, GraphSpec, ModelSpec,
                        NodeSpec, TensorInfo, ValueInfo, load_model_spec,
                        loads_model_spec, save_model_spec)

__all__ = ["ImportError_", "ImportReport", "import_model", "to_spec",
           "to_onnx"]


class ImportError_(Exception):
    """Raised in strict mode when a node cannot be bridged."""


@dataclass
class ImportReport:
    """Per-op accounting of one import run."""

    model: str
    #: foreign op -> nodes translated through its bridge.
    bridged: Dict[str, int] = field(default_factory=dict)
    #: foreign op -> nodes degraded to opaque Custom fallbacks.
    fallbacks: Dict[str, int] = field(default_factory=dict)
    #: node name -> why its bridge declined (or "no bridge").
    fallback_reasons: Dict[str, str] = field(default_factory=dict)
    #: human-readable lowering notes emitted by the bridges.
    notes: List[str] = field(default_factory=list)

    @property
    def total_nodes(self) -> int:
        return sum(self.bridged.values()) + sum(self.fallbacks.values())

    @property
    def num_fallbacks(self) -> int:
        return sum(self.fallbacks.values())

    @property
    def coverage(self) -> float:
        """Fraction of foreign nodes imported through a real bridge."""
        total = self.total_nodes
        return 1.0 if total == 0 else sum(self.bridged.values()) / total

    def summary(self) -> str:
        lines = [f"import '{self.model}': {self.total_nodes} foreign nodes, "
                 f"coverage {self.coverage:.1%}"]
        for op in sorted(self.bridged):
            lines.append(f"  bridged {op} x{self.bridged[op]}")
        for op in sorted(self.fallbacks):
            lines.append(f"  FALLBACK {op} x{self.fallbacks[op]}")
        for name, reason in sorted(self.fallback_reasons.items()):
            lines.append(f"    {name}: {reason}")
        lines.extend(f"  note: {n}" for n in self.notes)
        return "\n".join(lines)


def _op_key(node: NodeSpec) -> str:
    return f"{node.domain}::{node.op_type}" if node.domain else node.op_type


# ---------------------------------------------------------------------------
# Import
# ---------------------------------------------------------------------------

def import_model(source: Union[str, Path, bytes, ModelSpec],
                 strict: bool = False) -> Tuple[Graph, ImportReport]:
    """Import an ONNX model into an IR :class:`Graph`.

    ``source`` may be a file path (``.onnx`` protobuf or ``.json``
    fallback), raw model bytes, or an already-parsed :class:`ModelSpec`.
    With ``strict=True`` any unbridgeable node raises
    :class:`ImportError_` instead of degrading to a Custom fallback.
    """
    if isinstance(source, ModelSpec):
        spec = source
    elif isinstance(source, bytes):
        spec = loads_model_spec(source)
    else:
        spec = load_model_spec(source)

    gspec = spec.graph
    graph = Graph(gspec.name or "imported")
    ctx = ImportContext(graph)
    ctx.faithful = bool(gspec.source_ranks)
    report = ImportReport(model=gspec.name or "imported")

    for tensor in gspec.initializers:
        ctx.add_initializer(tensor)
    initializer_names = {t.name for t in gspec.initializers}
    for info in gspec.inputs:
        if info.name not in initializer_names:
            ctx.add_input(info.name, info.dims, info.dtype)

    # Declared intermediate/output shapes back the Custom fallback.
    declared: Dict[str, ValueInfo] = {}
    for info in list(gspec.value_infos) + list(gspec.outputs):
        declared[info.name] = info

    # When the exporter recorded source creation ranks, replay them: a
    # ranked source is materialised as soon as the graph has grown to its
    # recorded rank, reproducing the exporting graph's node-creation order
    # exactly (and with it the structural hash).  Foreign models carry no
    # ranks and fall back to the consumption-order heuristic.
    ranked = sorted(
        ((rank, name) for name, rank in gspec.source_ranks.items()),
    )
    ranked_idx = 0

    def _replay_ranked_sources() -> None:
        nonlocal ranked_idx
        while (ranked_idx < len(ranked)
               and ranked[ranked_idx][0] <= len(graph.nodes)):
            src_name = ranked[ranked_idx][1]
            if not ctx.has(src_name):
                # A Constant registered by a later spec node: wait for it.
                break
            ranked_idx += 1
            ctx.value(src_name)

    for node in gspec.nodes:
        bridge = BRIDGE.get((node.domain, node.op_type))
        if ranked:
            _replay_ranked_sources()
        else:
            ctx.touch_graph_inputs(node.inputs)
        before = len(ctx.notes)
        if bridge is not None:
            try:
                bridge.handler(ctx, node)
                key = _op_key(node)
                report.bridged[key] = report.bridged.get(key, 0) + 1
                continue
            except UnsupportedOp as exc:
                reason = str(exc)
                del ctx.notes[before:]  # notes from the aborted attempt
        else:
            reason = "no bridge"
        if strict:
            raise ImportError_(
                f"cannot import {_op_key(node)} node "
                f"'{node.name or node.outputs[0]}': {reason}")
        _fallback(ctx, node, declared, report, reason)

    if ranked:
        _replay_ranked_sources()
    report.notes.extend(ctx.notes)

    outputs = []
    for info in gspec.outputs:
        try:
            outputs.append(ctx.value(info.name))
        except UnsupportedOp as exc:
            raise ImportError_(f"graph output '{info.name}' was never "
                               f"produced: {exc}") from exc
    if outputs:
        graph.add_node(OpType.OUTPUT, tuple(outputs), {}, "output")
    graph.validate()
    return graph, report


def _fallback(ctx: ImportContext, node: NodeSpec,
              declared: Dict[str, ValueInfo], report: ImportReport,
              reason: str) -> None:
    """Degrade ``node`` to opaque Custom nodes with declared shapes."""
    key = _op_key(node)
    report.fallbacks[key] = report.fallbacks.get(key, 0) + 1
    report.fallback_reasons[node.name or node.outputs[0]] = reason

    inputs = []
    for name in node.inputs:
        if ctx.has(name):
            inputs.append(ctx.value(name))
    for slot, out_name in enumerate(node.outputs):
        if not out_name:
            continue
        info = declared.get(out_name)
        if info is not None and info.dims:
            shape, dtype = tuple(info.dims), info.dtype
        elif inputs:
            # No declaration: assume shape-preserving, first input's spec.
            src = ctx.graph.nodes[inputs[0][0]].outputs[inputs[0][1]]
            shape, dtype = tuple(src.shape.dims), src.dtype.value
            ctx.notes.append(
                f"fallback '{out_name}': no declared shape, "
                f"assumed input shape {shape}")
        else:
            raise ImportError_(
                f"cannot infer output shape for un-bridged source node "
                f"'{node.name or out_name}' ({key})")
        nid = ctx.emit(
            OpType.CUSTOM, inputs,
            {"op": key, "shape": shape, "dtype": dtype},
            node.name if len(node.outputs) == 1 else f"{node.name}#{slot}")
        ctx.bind(out_name, nid)


# ---------------------------------------------------------------------------
# Export
# ---------------------------------------------------------------------------

#: IR elementwise/unary ops whose standard-ONNX spelling round-trips
#: attr-for-attr through the default-domain bridges.
_DIRECT_EXPORT = {
    OpType.ADD: "Add", OpType.SUB: "Sub", OpType.MUL: "Mul",
    OpType.DIV: "Div", OpType.RELU: "Relu", OpType.GELU: "Gelu",
    OpType.SIGMOID: "Sigmoid", OpType.TANH: "Tanh", OpType.EXP: "Exp",
    OpType.SQRT: "Sqrt", OpType.ERF: "Erf", OpType.IDENTITY: "Identity",
    OpType.FLATTEN: "Flatten",
}

_REPRO_EXPORT = {
    OpType.GATHER: "Gather", OpType.GLOBAL_AVGPOOL: "GlobalAvgPool",
    OpType.ENLARGE_CONV: "EnlargeConv", OpType.FUSED_CONV_BN: "FusedConvBN",
    OpType.FUSED_CONV_RELU: "FusedConvRelu",
    OpType.FUSED_CONV_BN_RELU: "FusedConvBNRelu",
    OpType.FUSED_MATMUL_ADD: "FusedMatMulAdd", OpType.NOOP: "NoOp",
    OpType.SPLIT: "Split", OpType.CUSTOM: "Custom",
}

_CONV_EXPORT = {OpType.CONV2D, OpType.GROUP_CONV2D, OpType.DEPTHWISE_CONV2D}


def _auto_pad(padding: str) -> str:
    return "SAME_UPPER" if padding == "same" else "VALID"


def _export_attrs(node, graph: Graph) -> Tuple[str, str, Dict[str, object]]:
    """Map one IR node onto ``(onnx_op, domain, onnx_attrs)``."""
    op = node.op_type
    attrs = node.attrs

    if op in _DIRECT_EXPORT:
        return _DIRECT_EXPORT[op], "", {}

    if op in (OpType.MATMUL, OpType.BATCH_MATMUL):
        # The import bridge reads "MatMul" as batched iff *both* operands
        # have batch dims; nodes whose rank pattern contradicts their op
        # type must travel under the repro domain to survive round-trip.
        ranks = [len(graph.nodes[e.src].outputs[e.src_slot].shape.dims)
                 for e in graph.in_edges(node.node_id)]
        canonical = (OpType.BATCH_MATMUL if min(ranks) > 2 else OpType.MATMUL)
        if canonical is op:
            return "MatMul", "", {}
        return ("MatMul" if op is OpType.MATMUL else "BatchMatMul",
                REPRO_DOMAIN, {})
    if op in _REPRO_EXPORT:
        out: Dict[str, object] = {}
        for key, value in attrs.items():
            if value is None:
                continue
            out[key] = int(value) if isinstance(value, bool) else value
        if op is OpType.CUSTOM and "dtype" not in out:
            out["dtype"] = "float32"
        return _REPRO_EXPORT[op], REPRO_DOMAIN, out

    if op in _CONV_EXPORT:
        edges = graph.in_edges(node.node_id)
        if op is OpType.GROUP_CONV2D:
            in_ch = graph.nodes[edges[0].src].outputs[
                edges[0].src_slot].shape.dims[1]
            w_dims = graph.nodes[edges[1].src].outputs[
                edges[1].src_slot].shape.dims
            groups = attrs.get("groups")
            if groups is None or (int(groups) == in_ch and w_dims[1] == 1):
                # Conv's group dispatch would read this back as Conv2D or
                # DepthwiseConv2D; keep the IR identity via the repro domain.
                out = {k: int(v) if isinstance(v, bool) else v
                       for k, v in attrs.items() if v is not None}
                return "GroupConv2D", REPRO_DOMAIN, out
        out = {}
        if attrs.get("kernel") is not None:
            kernel = int(attrs["kernel"])
            out["kernel_shape"] = (kernel, kernel)
        if "stride" in attrs:
            out["strides"] = (int(attrs["stride"]),) * 2
        if "padding" in attrs:
            out["auto_pad"] = _auto_pad(attrs["padding"])
        if op is OpType.GROUP_CONV2D:
            out["group"] = int(attrs["groups"])
        elif op is OpType.DEPTHWISE_CONV2D:
            out["group"] = graph.nodes[edges[0].src].outputs[
                edges[0].src_slot].shape.dims[1]
        return "Conv", "", out

    if op in (OpType.MAXPOOL2D, OpType.AVGPOOL2D):
        kernel = int(attrs.get("kernel", 2))
        return ("MaxPool" if op is OpType.MAXPOOL2D else "AveragePool", "",
                {"kernel_shape": (kernel, kernel),
                 "strides": (int(attrs.get("stride", kernel)),) * 2,
                 "auto_pad": _auto_pad(attrs.get("padding", "valid"))})

    if op in (OpType.BATCHNORM, OpType.LAYERNORM):
        name = ("BatchNormalization" if op is OpType.BATCHNORM
                else "LayerNormalization")
        out = {}
        if "epsilon" in attrs:
            out["epsilon"] = float(attrs["epsilon"])
        return name, "", out
    if op is OpType.SOFTMAX:
        return "Softmax", "", {"axis": int(attrs.get("axis", -1))}
    if op is OpType.DROPOUT:
        return ("Dropout", "",
                {"ratio": float(attrs["rate"])} if "rate" in attrs else {})
    if op is OpType.CAST:
        return "Cast", "", {"to": str(attrs.get("to", "float32"))}

    if op is OpType.RESHAPE:
        return "Reshape", "", {"shape": tuple(attrs["shape"])}
    if op is OpType.TRANSPOSE:
        perm = attrs.get("perm")
        return "Transpose", "", ({"perm": tuple(perm)} if perm is not None
                                 else {})
    if op is OpType.CONCAT:
        return "Concat", "", {"axis": int(attrs.get("axis", 0))}
    if op is OpType.SLICE:
        return "Slice", "", {"starts": (int(attrs["start"]),),
                             "ends": (int(attrs["end"]),),
                             "axes": (int(attrs.get("axis", 0)),)}
    if op in (OpType.SQUEEZE, OpType.UNSQUEEZE):
        return ("Squeeze" if op is OpType.SQUEEZE else "Unsqueeze", "",
                {"axes": (int(attrs.get("axis", 0)),)})
    if op is OpType.PAD:
        pads = tuple(int(p) for p in attrs.get("pads") or ())
        rank = len(pads) // 2
        onnx_pads = tuple(pads[2 * i] for i in range(rank)) + \
            tuple(pads[2 * i + 1] for i in range(rank))
        return "Pad", "", {"pads": onnx_pads}
    if op in (OpType.REDUCE_SUM, OpType.REDUCE_MEAN, OpType.REDUCE_MAX):
        name = {OpType.REDUCE_SUM: "ReduceSum",
                OpType.REDUCE_MEAN: "ReduceMean",
                OpType.REDUCE_MAX: "ReduceMax"}[op]
        return name, "", {"axes": (int(attrs.get("axis", -1)),),
                          "keepdims": int(bool(attrs.get("keepdims", False)))}
    if op is OpType.EMBEDDING:
        return "Gather", "", {}

    raise ValueError(f"no export mapping for {op.value}")


def to_spec(graph: Graph, producer: str = "repro") -> ModelSpec:
    """Export an IR graph to a neutral :class:`ModelSpec`.

    Inverse of :func:`import_model` for every operator in the IR:
    importing the result reproduces the original structural hash.
    """
    gspec = GraphSpec(name=graph.name or "graph")

    # Unique value name per (node, slot); extra slots get a #N suffix.
    used: set = set()
    value_of: Dict[Tuple[NodeId, int], str] = {}
    for nid in graph.topological_order():
        node = graph.nodes[nid]
        base = node.name or f"v{nid}"
        if base in used:
            base = f"{base}_v{nid}"
        used.add(base)
        for slot in range(len(node.outputs)):
            value_of[(nid, slot)] = base if slot == 0 else f"{base}#{slot}"

    for position, nid in enumerate(graph.topological_order()):
        node = graph.nodes[nid]
        op = node.op_type
        name = value_of[(nid, 0)]
        if op is OpType.INPUT:
            gspec.inputs.append(ValueInfo(name, tuple(node.outputs[0].shape.dims)))
            gspec.source_ranks[name] = position
            continue
        if op is OpType.WEIGHT:
            gspec.initializers.append(
                TensorInfo(name, tuple(node.outputs[0].shape.dims)))
            gspec.source_ranks[name] = position
            continue
        if op is OpType.CONSTANT:
            gspec.nodes.append(NodeSpec(
                "Constant", (), (name,),
                {"shape": tuple(node.outputs[0].shape.dims)}, name,
                REPRO_DOMAIN))
            gspec.source_ranks[name] = position
            continue
        in_names = tuple(value_of[(e.src, e.src_slot)]
                         for e in graph.in_edges(nid))
        if op is OpType.OUTPUT:
            for in_name, edge in zip(in_names, graph.in_edges(nid)):
                src = graph.nodes[edge.src].outputs[edge.src_slot]
                gspec.outputs.append(
                    ValueInfo(in_name, tuple(src.shape.dims),
                              src.dtype.value))
            continue
        onnx_op, domain, attrs = _export_attrs(node, graph)
        out_names = tuple(value_of[(nid, slot)]
                          for slot in range(len(node.outputs)))
        gspec.nodes.append(NodeSpec(onnx_op, in_names, out_names, attrs,
                                    name, domain))
        for slot, out_name in enumerate(out_names):
            spec = node.outputs[slot]
            gspec.value_infos.append(
                ValueInfo(out_name, tuple(spec.shape.dims), spec.dtype.value))

    opset = {"": DEFAULT_OPSET}
    if any(n.domain == REPRO_DOMAIN for n in gspec.nodes):
        opset[REPRO_DOMAIN] = 1
    return ModelSpec(gspec, opset, producer=producer)


def to_onnx(graph: Graph, path: Union[str, Path],
            producer: str = "repro") -> None:
    """Export ``graph`` to ``path`` (protobuf for ``.onnx``, else JSON)."""
    save_model_spec(to_spec(graph, producer), path)
