"""Importable ONNX-level model zoo for the frontend conformance suite.

Unlike :mod:`repro.models` (which builds IR graphs directly), everything
here is generated as a *foreign* :class:`~repro.frontend.serialize.ModelSpec`
— standard ONNX ops in the default domain, initializer-fed shape inputs,
``auto_pad`` strings, Gemm with ``transB``, five-input BatchNormalization —
so importing one exercises the real bridge table, not a privileged
serialisation of our own IR.

Three families with depth/width/batch sweeps (:func:`zoo_specs`, ~3 dozen
variants at CI-friendly tensor sizes):

* ``resnet`` — Conv+BN+Relu residual stacks, GlobalAveragePool+Flatten+
  Gemm+Softmax head.
* ``bert`` — Gather embeddings, LayerNorm, batched attention with Reshape/
  Transpose plumbing, Gelu FFN.
* ``vit`` — patch-embedding Conv (stride = kernel = patch, VALID padding)
  feeding the same transformer trunk, ReduceMean token pooling.

The sweep is intentionally *spec-level*: every variant round-trips through
``import -> export -> import`` in the conformance tests and must import
with zero fallbacks.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .serialize import (GraphSpec, ModelSpec, NodeSpec, TensorInfo,
                        ValueInfo, save_model_spec)

__all__ = ["SpecBuilder", "zoo_specs", "write_zoo",
           "build_resnet_spec", "build_bert_spec", "build_vit_spec"]


class SpecBuilder:
    """Tiny fluent helper for assembling ONNX-level graph specs."""

    def __init__(self, name: str):
        self.graph = GraphSpec(name=name)
        self._counter = 0

    def _name(self, op: str) -> str:
        self._counter += 1
        return f"{op.lower()}_{self._counter}"

    def input(self, name: str, dims: Sequence[int],
              dtype: str = "float32") -> str:
        self.graph.inputs.append(ValueInfo(name, tuple(dims), dtype))
        return name

    def init(self, name: str, dims: Sequence[int], dtype: str = "float32",
             data: Optional[Sequence[float]] = None) -> str:
        self.graph.initializers.append(
            TensorInfo(name, tuple(dims), dtype,
                       tuple(data) if data is not None else None))
        return name

    def const_shape(self, values: Sequence[int]) -> str:
        """An int64 initializer carrying a shape (Reshape-style input)."""
        name = self._name("shape")
        return self.init(name, (len(values),), "int64",
                         [int(v) for v in values])

    def node(self, op: str, inputs: Sequence[str], attrs=None,
             name: str = "", num_outputs: int = 1,
             domain: str = "") -> Union[str, Tuple[str, ...]]:
        name = name or self._name(op)
        outputs = tuple(name if i == 0 else f"{name}_out{i}"
                        for i in range(num_outputs))
        self.graph.nodes.append(
            NodeSpec(op, tuple(inputs), outputs, dict(attrs or {}),
                     name, domain))
        return outputs[0] if num_outputs == 1 else outputs

    def output(self, value: str, dims: Sequence[int],
               dtype: str = "float32") -> None:
        self.graph.outputs.append(ValueInfo(value, tuple(dims), dtype))

    def declare(self, value: str, dims: Sequence[int],
                dtype: str = "float32") -> None:
        """Record a value_info (declared intermediate shape)."""
        self.graph.value_infos.append(ValueInfo(value, tuple(dims), dtype))

    def finish(self, opset: int = 17) -> ModelSpec:
        return ModelSpec(self.graph, {"": opset}, producer="repro-zoo")


# ---------------------------------------------------------------------------
# Building blocks
# ---------------------------------------------------------------------------

def _conv_bn_relu(b: SpecBuilder, x: str, c_in: int, c_out: int,
                  kernel: int = 3, stride: int = 1, tag: str = "") -> str:
    w = b.init(f"{tag}_w", (c_out, c_in, kernel, kernel))
    conv = b.node("Conv", [x, w],
                  {"kernel_shape": (kernel, kernel),
                   "strides": (stride, stride), "auto_pad": "SAME_UPPER"},
                  name=f"{tag}_conv")
    bn = _batchnorm(b, conv, c_out, tag)
    return b.node("Relu", [bn], name=f"{tag}_relu")


def _batchnorm(b: SpecBuilder, x: str, channels: int, tag: str) -> str:
    # Full five-input ONNX form; the bridge folds the running statistics.
    scale = b.init(f"{tag}_bn_scale", (channels,))
    bias = b.init(f"{tag}_bn_bias", (channels,))
    mean = b.init(f"{tag}_bn_mean", (channels,))
    var = b.init(f"{tag}_bn_var", (channels,))
    return b.node("BatchNormalization", [x, scale, bias, mean, var],
                  {"epsilon": 1e-5}, name=f"{tag}_bn")


def _linear(b: SpecBuilder, x: str, d_in: int, d_out: int, tag: str) -> str:
    """Rank-3 activations times a rank-2 weight, plus broadcast bias."""
    w = b.init(f"{tag}_w", (d_in, d_out))
    bias = b.init(f"{tag}_b", (d_out,))
    mm = b.node("MatMul", [x, w], name=f"{tag}_mm")
    return b.node("Add", [mm, bias], name=f"{tag}_add")


def _attention(b: SpecBuilder, x: str, batch: int, seq: int, hidden: int,
               heads: int, tag: str) -> str:
    head_dim = hidden // heads
    q = _linear(b, x, hidden, hidden, f"{tag}_q")
    k = _linear(b, x, hidden, hidden, f"{tag}_k")
    v = _linear(b, x, hidden, hidden, f"{tag}_v")
    folded = (batch * heads, seq, head_dim)
    q = b.node("Reshape", [q, b.const_shape(folded)], name=f"{tag}_qr")
    k = b.node("Reshape", [k, b.const_shape(folded)], name=f"{tag}_kr")
    v = b.node("Reshape", [v, b.const_shape(folded)], name=f"{tag}_vr")
    kt = b.node("Transpose", [k], {"perm": (0, 2, 1)}, name=f"{tag}_kt")
    scores = b.node("MatMul", [q, kt], name=f"{tag}_scores")
    scale = b.init(f"{tag}_scale", (1,), data=[head_dim ** -0.5])
    scores = b.node("Mul", [scores, scale], name=f"{tag}_scaled")
    probs = b.node("Softmax", [scores], {"axis": -1}, name=f"{tag}_probs")
    ctx = b.node("MatMul", [probs, v], name=f"{tag}_ctx")
    ctx = b.node("Reshape", [ctx, b.const_shape((batch, seq, hidden))],
                 name=f"{tag}_merge")
    return _linear(b, ctx, hidden, hidden, f"{tag}_o")


def _layernorm(b: SpecBuilder, x: str, hidden: int, tag: str) -> str:
    scale = b.init(f"{tag}_ln_scale", (hidden,))
    bias = b.init(f"{tag}_ln_bias", (hidden,))
    return b.node("LayerNormalization", [x, scale, bias],
                  {"epsilon": 1e-5, "axis": -1}, name=f"{tag}_ln")


def _transformer_block(b: SpecBuilder, x: str, batch: int, seq: int,
                       hidden: int, heads: int, ffn_dim: int,
                       tag: str) -> str:
    normed = _layernorm(b, x, hidden, f"{tag}_pre")
    attn = _attention(b, normed, batch, seq, hidden, heads, f"{tag}_attn")
    x = b.node("Add", [x, attn], name=f"{tag}_res1")
    normed = _layernorm(b, x, hidden, f"{tag}_mid")
    h = _linear(b, normed, hidden, ffn_dim, f"{tag}_fc1")
    h = b.node("Gelu", [h], name=f"{tag}_gelu")
    h = _linear(b, h, ffn_dim, hidden, f"{tag}_fc2")
    return b.node("Add", [x, h], name=f"{tag}_res2")


# ---------------------------------------------------------------------------
# Families
# ---------------------------------------------------------------------------

def build_resnet_spec(blocks: int = 2, width: int = 8, batch: int = 1,
                      image: int = 8, classes: int = 10) -> ModelSpec:
    """Residual conv stack with a GlobalAveragePool+Gemm+Softmax head."""
    b = SpecBuilder(f"zoo-resnet-b{blocks}w{width}n{batch}")
    x = b.input("image", (batch, 3, image, image))
    x = _conv_bn_relu(b, x, 3, width, tag="stem")
    for i in range(blocks):
        tag = f"block{i}"
        y = _conv_bn_relu(b, x, width, width, tag=f"{tag}_a")
        w = b.init(f"{tag}_b_w", (width, width, 3, 3))
        y = b.node("Conv", [y, w],
                   {"kernel_shape": (3, 3), "strides": (1, 1),
                    "auto_pad": "SAME_UPPER"}, name=f"{tag}_b_conv")
        y = _batchnorm(b, y, width, f"{tag}_b")
        x = b.node("Add", [x, y], name=f"{tag}_skip")
        x = b.node("Relu", [x], name=f"{tag}_out")
    pooled = b.node("GlobalAveragePool", [x], name="gap")
    flat = b.node("Flatten", [pooled], {"axis": 1}, name="flat")
    cls_w = b.init("cls_w", (classes, width))
    cls_b = b.init("cls_b", (classes,))
    logits = b.node("Gemm", [flat, cls_w, cls_b], {"transB": 1},
                    name="classifier")
    probs = b.node("Softmax", [logits], {"axis": -1}, name="probs")
    b.output(probs, (batch, classes))
    return b.finish()


def build_bert_spec(layers: int = 2, hidden: int = 32, heads: int = 2,
                    seq: int = 8, batch: int = 1,
                    vocab: int = 32) -> ModelSpec:
    """Token embeddings plus a stack of pre-LN transformer encoder blocks."""
    b = SpecBuilder(f"zoo-bert-l{layers}h{hidden}s{seq}n{batch}")
    tokens = b.input("tokens", (batch, seq), "int64")
    table = b.init("embed_table", (vocab, hidden))
    x = b.node("Gather", [table, tokens], {"axis": 0}, name="embed")
    for i in range(layers):
        x = _transformer_block(b, x, batch, seq, hidden, heads,
                               hidden * 2, f"layer{i}")
    x = _layernorm(b, x, hidden, "final")
    b.output(x, (batch, seq, hidden))
    return b.finish()


def build_vit_spec(layers: int = 2, hidden: int = 32, heads: int = 2,
                   patch: int = 4, image: int = 8,
                   batch: int = 1) -> ModelSpec:
    """Patch-embedding Conv feeding a transformer trunk, mean-pooled."""
    b = SpecBuilder(f"zoo-vit-l{layers}h{hidden}i{image}p{patch}n{batch}")
    grid = image // patch
    seq = grid * grid
    x = b.input("image", (batch, 3, image, image))
    patch_w = b.init("patch_w", (hidden, 3, patch, patch))
    x = b.node("Conv", [x, patch_w],
               {"kernel_shape": (patch, patch), "strides": (patch, patch),
                "auto_pad": "VALID"}, name="patchify")
    x = b.node("Reshape", [x, b.const_shape((batch, hidden, seq))],
               name="tokens")
    x = b.node("Transpose", [x], {"perm": (0, 2, 1)}, name="tokens_t")
    for i in range(layers):
        x = _transformer_block(b, x, batch, seq, hidden, heads,
                               hidden * 2, f"layer{i}")
    x = _layernorm(b, x, hidden, "final")
    pooled = b.node("ReduceMean", [x], {"axes": (1,), "keepdims": 0},
                    name="pool")
    b.output(pooled, (batch, hidden))
    return b.finish()


# ---------------------------------------------------------------------------
# The sweep
# ---------------------------------------------------------------------------

def zoo_specs(smoke: bool = False) -> Dict[str, ModelSpec]:
    """Name -> spec for every zoo variant.

    ``smoke=True`` returns one small variant per family (the PR-sized
    conformance run); the full sweep is ~3 dozen models.
    """
    specs: Dict[str, ModelSpec] = {}

    def add(spec: ModelSpec) -> None:
        specs[spec.graph.name] = spec

    if smoke:
        add(build_resnet_spec(blocks=1, width=8, batch=1))
        add(build_bert_spec(layers=1, hidden=32, heads=2, seq=8))
        add(build_vit_spec(layers=1, hidden=32, heads=2))
        return specs

    for blocks in (1, 2, 3):
        for width in (8, 16):
            for batch in (1, 2):
                add(build_resnet_spec(blocks=blocks, width=width,
                                      batch=batch))
    for layers in (1, 2):
        for hidden, heads in ((32, 2), (64, 4)):
            for seq in (8, 16):
                add(build_bert_spec(layers=layers, hidden=hidden,
                                    heads=heads, seq=seq))
    for layers in (1, 2):
        for hidden, heads in ((32, 2), (64, 4)):
            for image, patch in ((8, 4), (16, 4)):
                add(build_vit_spec(layers=layers, hidden=hidden,
                                   heads=heads, patch=patch, image=image))
    return specs


def write_zoo(directory: Union[str, Path], fmt: str = "onnx",
              smoke: bool = False) -> List[Path]:
    """Write every zoo spec under ``directory``; returns the file paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    suffix = ".onnx" if fmt == "onnx" else ".json"
    paths = []
    for name, spec in zoo_specs(smoke=smoke).items():
        path = directory / f"{name}{suffix}"
        save_model_spec(spec, path)
        paths.append(path)
    return paths
