"""Frontend importers: foreign model formats -> the tensor-graph IR.

The only frontend today is ONNX (:mod:`repro.frontend.onnx`), built from
three layers:

* :mod:`repro.frontend.serialize` — a protobuf-free ``.onnx`` wire codec
  plus a JSON fallback format, parsed into neutral spec dataclasses.
* :mod:`repro.frontend.ops_bridge` — the declarative per-op bridge table
  translating foreign node specs into IR nodes.
* :mod:`repro.frontend.onnx` — the import/export drivers and the
  :class:`~repro.frontend.onnx.ImportReport` coverage accounting.

:mod:`repro.frontend.zoo` generates importable model specs (depth/width/
batch sweeps over resnet/bert/vit-style topologies) used by the importer
conformance suite and CI.
"""

from .onnx import ImportError_, ImportReport, import_model, to_onnx, to_spec
from .serialize import (GraphSpec, ModelSpec, NodeSpec, TensorInfo,
                        ValueInfo, load_model_spec, save_model_spec)

__all__ = [
    "ImportError_", "ImportReport", "import_model", "to_onnx", "to_spec",
    "GraphSpec", "ModelSpec", "NodeSpec", "TensorInfo", "ValueInfo",
    "load_model_spec", "save_model_spec",
]
