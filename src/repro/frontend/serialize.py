"""Model-file I/O for the frontend: a protobuf-free ``.onnx`` codec.

The importer consumes a *neutral* in-memory description of an ONNX model
(:class:`ModelSpec` / :class:`GraphSpec` / :class:`NodeSpec`), never the
protobuf python objects, so the ``onnx`` wheel is an optional convenience
rather than a dependency.  Two on-disk encodings map onto that
description:

``.onnx`` (protobuf wire format)
    Read and written by a minimal hand-rolled codec below.  Protobuf's
    wire format is just ``(field_number << 3 | wire_type)`` tags followed
    by varints or length-delimited payloads; decoding the handful of
    message types ONNX uses (ModelProto, GraphProto, NodeProto,
    AttributeProto, TensorProto, ValueInfoProto) takes ~200 lines and
    zero new wheels.  Unknown fields are skipped, so models produced by
    real exporters parse fine — we only keep what the importer needs.

``.json`` (fallback format)
    A direct JSON rendering of the same dataclasses, for hand-written
    fixtures and environments where binary artifacts are awkward.
    :func:`load_model_spec` sniffs the content (JSON starts with ``{``),
    so either encoding can hide behind either extension.

Weight payloads are deliberately second-class: the executor materialises
parameters deterministically from *name and shape*, so the importer only
needs tensor values when they feed shape-like inputs (Reshape targets,
Slice bounds, ...).  Large float payloads in ``raw_data`` are therefore
dropped on read instead of hauled through memory.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "TensorInfo", "ValueInfo", "NodeSpec", "GraphSpec", "ModelSpec",
    "load_model_spec", "loads_model_spec", "save_model_spec",
    "model_spec_to_bytes", "model_spec_to_json",
    "REPRO_DOMAIN", "DEFAULT_OPSET",
]

#: Custom operator-set domain used for repro-IR ops with no standard ONNX
#: equivalent (fused ops, EnlargeConv, opaque Custom nodes, ...).
REPRO_DOMAIN = "ai.repro"

#: Default-domain opset version stamped on exported models.
DEFAULT_OPSET = 17

# ONNX TensorProto.DataType -> repro dtype string (and back).  Anything
# not listed imports as float32; the bridge notes the coercion.
_ONNX_DTYPE_TO_STR = {1: "float32", 6: "int32", 7: "int64", 9: "bool",
                      10: "float16", 11: "float32"}
_STR_TO_ONNX_DTYPE = {"float32": 1, "int32": 6, "int64": 7, "bool": 9,
                      "float16": 10}


# ---------------------------------------------------------------------------
# Neutral model description
# ---------------------------------------------------------------------------

@dataclass
class TensorInfo:
    """An initializer: a named constant tensor, payload optional."""

    name: str
    dims: Tuple[int, ...]
    dtype: str = "float32"
    #: Flat row-major values; ``None`` when the payload was absent or
    #: dropped (float weights — the executor regenerates them by name).
    data: Optional[Tuple[float, ...]] = None


@dataclass
class ValueInfo:
    """A named graph input/output/intermediate with declared type."""

    name: str
    dims: Tuple[int, ...] = ()
    dtype: str = "float32"


@dataclass
class NodeSpec:
    """One operator application."""

    op_type: str
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]
    attrs: Dict[str, object] = field(default_factory=dict)
    name: str = ""
    domain: str = ""


@dataclass
class GraphSpec:
    name: str
    nodes: List[NodeSpec] = field(default_factory=list)
    inputs: List[ValueInfo] = field(default_factory=list)
    outputs: List[ValueInfo] = field(default_factory=list)
    initializers: List[TensorInfo] = field(default_factory=list)
    value_infos: List[ValueInfo] = field(default_factory=list)
    #: Optional exporter hint: source value name -> creation rank among all
    #: IR nodes.  Lets the importer replay the exact node-creation order of
    #: the exporting graph (the structural hash is sensitive to the
    #: interleaving of Input/Weight creation with operator nodes).  Rides
    #: in GraphProto.doc_string on the wire; absent in foreign models.
    source_ranks: Dict[str, int] = field(default_factory=dict)


@dataclass
class ModelSpec:
    graph: GraphSpec
    #: ``domain -> opset version``; "" is the default ONNX domain.
    opset: Dict[str, int] = field(default_factory=lambda: {"": DEFAULT_OPSET})
    ir_version: int = 8
    producer: str = "repro"


# ---------------------------------------------------------------------------
# Protobuf wire primitives
# ---------------------------------------------------------------------------

_WT_VARINT, _WT_I64, _WT_LEN, _WT_I32 = 0, 1, 2, 5


def _read_varint(buf: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise ValueError("malformed varint")


def _signed(value: int) -> int:
    # int64 fields store negatives as 2's-complement 64-bit varints.
    return value - (1 << 64) if value >= (1 << 63) else value


def _iter_fields(buf: bytes):
    """Yield ``(field_number, wire_type, value)`` triples from a message.

    ``value`` is an int for varint/fixed fields and a ``bytes`` slice for
    length-delimited ones.  Unknown wire types raise — ONNX never uses
    groups.
    """
    pos = 0
    end = len(buf)
    while pos < end:
        tag, pos = _read_varint(buf, pos)
        number, wtype = tag >> 3, tag & 7
        if wtype == _WT_VARINT:
            value, pos = _read_varint(buf, pos)
        elif wtype == _WT_LEN:
            size, pos = _read_varint(buf, pos)
            value = buf[pos:pos + size]
            if len(value) != size:
                raise ValueError("truncated length-delimited field")
            pos += size
        elif wtype == _WT_I64:
            value = int.from_bytes(buf[pos:pos + 8], "little")
            pos += 8
        elif wtype == _WT_I32:
            value = int.from_bytes(buf[pos:pos + 4], "little")
            pos += 4
        else:
            raise ValueError(f"unsupported wire type {wtype}")
        yield number, wtype, value


def _packed_varints(value, wtype) -> List[int]:
    """A repeated int field arrives packed (LEN) or one-per-tag (VARINT)."""
    if wtype == _WT_VARINT:
        return [_signed(value)]
    out = []
    pos = 0
    while pos < len(value):
        item, pos = _read_varint(value, pos)
        out.append(_signed(item))
    return out


def _packed_floats(value, wtype) -> List[float]:
    if wtype == _WT_I32:
        return [struct.unpack("<f", value.to_bytes(4, "little"))[0]]
    count = len(value) // 4
    return list(struct.unpack(f"<{count}f", value[:count * 4]))


class _Writer:
    """Accumulates one protobuf message."""

    def __init__(self):
        self.parts: List[bytes] = []

    @staticmethod
    def _varint(value: int) -> bytes:
        if value < 0:
            value += 1 << 64
        out = bytearray()
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                return bytes(out)

    def varint(self, number: int, value: int) -> None:
        self.parts.append(self._varint(number << 3 | _WT_VARINT))
        self.parts.append(self._varint(value))

    def bytes_(self, number: int, payload: bytes) -> None:
        self.parts.append(self._varint(number << 3 | _WT_LEN))
        self.parts.append(self._varint(len(payload)))
        self.parts.append(payload)

    def string(self, number: int, text: str) -> None:
        self.bytes_(number, text.encode("utf-8"))

    def message(self, number: int, writer: "_Writer") -> None:
        self.bytes_(number, writer.dumps())

    def packed_varints(self, number: int, values: Sequence[int]) -> None:
        body = b"".join(self._varint(int(v)) for v in values)
        self.bytes_(number, body)

    def packed_floats(self, number: int, values: Sequence[float]) -> None:
        self.bytes_(number, struct.pack(f"<{len(values)}f", *values))

    def dumps(self) -> bytes:
        return b"".join(self.parts)


# ---------------------------------------------------------------------------
# ONNX message decoding
# ---------------------------------------------------------------------------

# AttributeProto.AttributeType values we understand.
_ATTR_FLOAT, _ATTR_INT, _ATTR_STRING, _ATTR_TENSOR = 1, 2, 3, 4
_ATTR_FLOATS, _ATTR_INTS, _ATTR_STRINGS = 6, 7, 8

#: Values above this many elements are dropped on read unless they are
#: integer typed (candidates for shape-feeding inputs).
_MAX_FLOAT_PAYLOAD = 4096


def _decode_attribute(buf: bytes) -> Tuple[str, object]:
    name = ""
    atype = 0
    f_val = 0.0
    i_val = 0
    s_val = b""
    t_val: Optional["TensorInfo"] = None
    floats: List[float] = []
    ints: List[int] = []
    strings: List[bytes] = []
    for number, wtype, value in _iter_fields(buf):
        if number == 1:
            name = value.decode("utf-8")
        elif number == 20:
            atype = value
        elif number == 2:
            f_val = _packed_floats(value, wtype)[0]
        elif number == 3:
            i_val = _signed(value)
        elif number == 4:
            s_val = value
        elif number == 5:
            t_val = _decode_tensor(value)
        elif number == 7:
            floats.extend(_packed_floats(value, wtype))
        elif number == 8:
            ints.extend(_packed_varints(value, wtype))
        elif number == 9:
            strings.append(value)
    if atype == _ATTR_FLOAT:
        return name, f_val
    if atype == _ATTR_INT:
        return name, i_val
    if atype == _ATTR_STRING:
        return name, s_val.decode("utf-8")
    if atype == _ATTR_TENSOR:
        # Tensor attrs (real exporters stash Reshape targets in Constant
        # nodes) surface as TensorInfo; the Constant bridge unpacks them.
        return name, t_val if t_val is not None else TensorInfo("", ())
    if atype == _ATTR_FLOATS:
        return name, tuple(floats)
    if atype == _ATTR_INTS:
        return name, tuple(ints)
    if atype == _ATTR_STRINGS:
        return name, tuple(s.decode("utf-8") for s in strings)
    raise ValueError(f"unsupported attribute type {atype} for '{name}'")


def _decode_node(buf: bytes) -> NodeSpec:
    inputs: List[str] = []
    outputs: List[str] = []
    attrs: Dict[str, object] = {}
    op_type = ""
    name = ""
    domain = ""
    for number, wtype, value in _iter_fields(buf):
        if number == 1:
            inputs.append(value.decode("utf-8"))
        elif number == 2:
            outputs.append(value.decode("utf-8"))
        elif number == 3:
            name = value.decode("utf-8")
        elif number == 4:
            op_type = value.decode("utf-8")
        elif number == 5:
            key, attr = _decode_attribute(value)
            attrs[key] = attr
        elif number == 7:
            domain = value.decode("utf-8")
    return NodeSpec(op_type, tuple(inputs), tuple(outputs), attrs, name, domain)


def _decode_tensor(buf: bytes) -> TensorInfo:
    dims: List[int] = []
    data_type = 1
    name = ""
    raw = b""
    ints: List[int] = []
    floats: List[float] = []
    for number, wtype, value in _iter_fields(buf):
        if number == 1:
            dims.extend(_packed_varints(value, wtype))
        elif number == 2:
            data_type = value
        elif number == 4:
            floats.extend(_packed_floats(value, wtype))
        elif number in (5, 7):  # int32_data / int64_data
            ints.extend(_packed_varints(value, wtype))
        elif number == 8:
            name = value.decode("utf-8")
        elif number == 9:
            raw = value
    dtype = _ONNX_DTYPE_TO_STR.get(data_type, "float32")
    data: Optional[Tuple[float, ...]] = None
    if ints:
        data = tuple(ints)
    elif floats and len(floats) <= _MAX_FLOAT_PAYLOAD:
        data = tuple(floats)
    elif raw:
        data = _decode_raw(raw, data_type)
    return TensorInfo(name, tuple(dims), dtype, data)


def _decode_raw(raw: bytes, data_type: int) -> Optional[Tuple[float, ...]]:
    if data_type == 7:  # int64
        count = len(raw) // 8
        return tuple(struct.unpack(f"<{count}q", raw[:count * 8]))
    if data_type == 6:  # int32
        count = len(raw) // 4
        return tuple(struct.unpack(f"<{count}i", raw[:count * 4]))
    if data_type == 1 and len(raw) // 4 <= _MAX_FLOAT_PAYLOAD:  # float32
        count = len(raw) // 4
        return tuple(struct.unpack(f"<{count}f", raw[:count * 4]))
    return None  # large float payload: regenerated by name at execution


def _decode_value_info(buf: bytes) -> ValueInfo:
    name = ""
    dims: Tuple[int, ...] = ()
    dtype = "float32"
    for number, _wtype, value in _iter_fields(buf):
        if number == 1:
            name = value.decode("utf-8")
        elif number == 2:  # TypeProto
            for n2, _w2, v2 in _iter_fields(value):
                if n2 != 1:  # tensor_type
                    continue
                for n3, _w3, v3 in _iter_fields(v2):
                    if n3 == 1:  # elem_type
                        dtype = _ONNX_DTYPE_TO_STR.get(v3, "float32")
                    elif n3 == 2:  # TensorShapeProto
                        parsed: List[int] = []
                        for n4, _w4, v4 in _iter_fields(v3):
                            if n4 != 1:  # dim
                                continue
                            dim_value = 1  # symbolic dims import as 1
                            for n5, _w5, v5 in _iter_fields(v4):
                                if n5 == 1:
                                    dim_value = _signed(v5)
                            parsed.append(dim_value)
                        dims = tuple(parsed)
    return ValueInfo(name, dims, dtype)


def _decode_graph(buf: bytes) -> GraphSpec:
    spec = GraphSpec(name="graph")
    for number, _wtype, value in _iter_fields(buf):
        if number == 1:
            spec.nodes.append(_decode_node(value))
        elif number == 2:
            spec.name = value.decode("utf-8")
        elif number == 10:  # doc_string: may carry the source-rank hint
            try:
                doc = json.loads(value.decode("utf-8"))
                ranks = doc.get("repro.source_ranks", {})
                spec.source_ranks = {str(k): int(v) for k, v in ranks.items()}
            except (ValueError, AttributeError):
                pass
        elif number == 5:
            spec.initializers.append(_decode_tensor(value))
        elif number == 11:
            spec.inputs.append(_decode_value_info(value))
        elif number == 12:
            spec.outputs.append(_decode_value_info(value))
        elif number == 13:
            spec.value_infos.append(_decode_value_info(value))
    return spec


def _decode_model(buf: bytes) -> ModelSpec:
    graph: Optional[GraphSpec] = None
    opset: Dict[str, int] = {}
    ir_version = 8
    producer = ""
    for number, _wtype, value in _iter_fields(buf):
        if number == 1:
            ir_version = value
        elif number == 2:
            producer = value.decode("utf-8")
        elif number == 7:
            graph = _decode_graph(value)
        elif number == 8:
            domain = ""
            version = 1
            for n2, _w2, v2 in _iter_fields(value):
                if n2 == 1:
                    domain = v2.decode("utf-8")
                elif n2 == 2:
                    version = v2
            opset[domain] = version
    if graph is None:
        raise ValueError("model has no graph")
    if not opset:
        opset = {"": DEFAULT_OPSET}
    return ModelSpec(graph, opset, ir_version, producer or "unknown")


# ---------------------------------------------------------------------------
# ONNX message encoding
# ---------------------------------------------------------------------------

def _encode_attribute(name: str, value: object) -> _Writer:
    w = _Writer()
    w.string(1, name)
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, float):
        w.varint(20, _ATTR_FLOAT)
        w.parts.append(w._varint(2 << 3 | _WT_I32))  # field 2: fixed32 float
        w.parts.append(struct.pack("<f", value))
    elif isinstance(value, int):
        w.varint(20, _ATTR_INT)
        w.varint(3, value)
    elif isinstance(value, str):
        w.varint(20, _ATTR_STRING)
        w.string(4, value)
    elif isinstance(value, TensorInfo):
        w.varint(20, _ATTR_TENSOR)
        w.message(5, _encode_tensor(value))
    elif isinstance(value, (tuple, list)):
        items = list(value)
        if items and all(isinstance(v, str) for v in items):
            w.varint(20, _ATTR_STRINGS)
            for item in items:
                w.string(9, item)
        elif any(isinstance(v, float) for v in items):
            w.varint(20, _ATTR_FLOATS)
            w.packed_floats(7, [float(v) for v in items])
        else:
            w.varint(20, _ATTR_INTS)
            w.packed_varints(8, [int(v) for v in items])
    else:
        raise TypeError(f"unsupported attribute value for '{name}': {value!r}")
    return w


def _encode_node(node: NodeSpec) -> _Writer:
    w = _Writer()
    for name in node.inputs:
        w.string(1, name)
    for name in node.outputs:
        w.string(2, name)
    if node.name:
        w.string(3, node.name)
    w.string(4, node.op_type)
    for key in sorted(node.attrs):
        w.message(5, _encode_attribute(key, node.attrs[key]))
    if node.domain:
        w.string(7, node.domain)
    return w


def _encode_tensor(tensor: TensorInfo) -> _Writer:
    w = _Writer()
    w.packed_varints(1, tensor.dims)
    w.varint(2, _STR_TO_ONNX_DTYPE.get(tensor.dtype, 1))
    if tensor.data is not None:
        if tensor.dtype in ("int64", "int32", "bool"):
            w.packed_varints(7, [int(v) for v in tensor.data])
        else:
            w.packed_floats(4, [float(v) for v in tensor.data])
    w.string(8, tensor.name)
    return w


def _encode_value_info(info: ValueInfo) -> _Writer:
    shape = _Writer()
    for dim in info.dims:
        d = _Writer()
        d.varint(1, int(dim))
        shape.message(1, d)
    tensor_type = _Writer()
    tensor_type.varint(1, _STR_TO_ONNX_DTYPE.get(info.dtype, 1))
    tensor_type.message(2, shape)
    type_proto = _Writer()
    type_proto.message(1, tensor_type)
    w = _Writer()
    w.string(1, info.name)
    w.message(2, type_proto)
    return w


def _encode_graph(graph: GraphSpec) -> _Writer:
    w = _Writer()
    for node in graph.nodes:
        w.message(1, _encode_node(node))
    w.string(2, graph.name)
    if graph.source_ranks:
        w.string(10, json.dumps({"repro.source_ranks": graph.source_ranks},
                                sort_keys=True))
    for tensor in graph.initializers:
        w.message(5, _encode_tensor(tensor))
    for info in graph.inputs:
        w.message(11, _encode_value_info(info))
    for info in graph.outputs:
        w.message(12, _encode_value_info(info))
    for info in graph.value_infos:
        w.message(13, _encode_value_info(info))
    return w


def model_spec_to_bytes(spec: ModelSpec) -> bytes:
    """Serialise ``spec`` to ONNX protobuf wire bytes."""
    w = _Writer()
    w.varint(1, spec.ir_version)
    w.string(2, spec.producer)
    w.message(7, _encode_graph(spec.graph))
    for domain in sorted(spec.opset):
        entry = _Writer()
        if domain:
            entry.string(1, domain)
        entry.varint(2, spec.opset[domain])
        w.message(8, entry)
    return w.dumps()


# ---------------------------------------------------------------------------
# JSON fallback encoding
# ---------------------------------------------------------------------------

def _value_info_to_dict(info: ValueInfo) -> Dict:
    return {"name": info.name, "dims": list(info.dims), "dtype": info.dtype}


def _attr_to_json(value: object) -> object:
    if isinstance(value, TensorInfo):
        return {"__tensor__": {
            "name": value.name, "dims": list(value.dims),
            "dtype": value.dtype,
            **({"data": list(value.data)} if value.data is not None else {})}}
    return list(value) if isinstance(value, tuple) else value


def _attr_from_json(value: object) -> object:
    if isinstance(value, dict) and "__tensor__" in value:
        t = value["__tensor__"]
        return TensorInfo(t.get("name", ""), tuple(t.get("dims", ())),
                          t.get("dtype", "float32"),
                          tuple(t["data"]) if "data" in t else None)
    return tuple(value) if isinstance(value, list) else value


def model_spec_to_json(spec: ModelSpec) -> str:
    """Serialise ``spec`` to the JSON fallback format."""
    graph = spec.graph
    doc = {
        "format": "repro-onnx-json",
        "version": 1,
        "ir_version": spec.ir_version,
        "producer": spec.producer,
        "opset": dict(spec.opset),
        "graph": {
            "name": graph.name,
            **({"source_ranks": dict(graph.source_ranks)}
               if graph.source_ranks else {}),
            "inputs": [_value_info_to_dict(i) for i in graph.inputs],
            "outputs": [_value_info_to_dict(o) for o in graph.outputs],
            "value_infos": [_value_info_to_dict(v) for v in graph.value_infos],
            "initializers": [
                {"name": t.name, "dims": list(t.dims), "dtype": t.dtype,
                 **({"data": list(t.data)} if t.data is not None else {})}
                for t in graph.initializers
            ],
            "nodes": [
                {"op": n.op_type, "name": n.name, "domain": n.domain,
                 "inputs": list(n.inputs), "outputs": list(n.outputs),
                 "attrs": {k: _attr_to_json(v) for k, v in n.attrs.items()}}
                for n in graph.nodes
            ],
        },
    }
    return json.dumps(doc, indent=1, sort_keys=True)


def _value_info_from_dict(data: Dict) -> ValueInfo:
    return ValueInfo(data["name"], tuple(data.get("dims", ())),
                     data.get("dtype", "float32"))


def _model_spec_from_json(text: str) -> ModelSpec:
    doc = json.loads(text)
    if doc.get("format") != "repro-onnx-json":
        raise ValueError("not a repro-onnx-json document")
    g = doc["graph"]
    graph = GraphSpec(
        name=g.get("name", "graph"),
        source_ranks={str(k): int(v)
                      for k, v in g.get("source_ranks", {}).items()},
        inputs=[_value_info_from_dict(i) for i in g.get("inputs", [])],
        outputs=[_value_info_from_dict(o) for o in g.get("outputs", [])],
        value_infos=[_value_info_from_dict(v) for v in g.get("value_infos", [])],
        initializers=[
            TensorInfo(t["name"], tuple(t.get("dims", ())),
                       t.get("dtype", "float32"),
                       tuple(t["data"]) if "data" in t else None)
            for t in g.get("initializers", [])
        ],
        nodes=[
            NodeSpec(n["op"], tuple(n.get("inputs", ())),
                     tuple(n.get("outputs", ())),
                     {k: _attr_from_json(v)
                      for k, v in n.get("attrs", {}).items()},
                     n.get("name", ""), n.get("domain", ""))
            for n in g.get("nodes", [])
        ],
    )
    return ModelSpec(graph, dict(doc.get("opset", {"": DEFAULT_OPSET})),
                     doc.get("ir_version", 8), doc.get("producer", "unknown"))


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------

def loads_model_spec(data: bytes) -> ModelSpec:
    """Parse model bytes in either encoding (content-sniffed)."""
    stripped = data.lstrip()
    if stripped.startswith(b"{"):
        return _model_spec_from_json(stripped.decode("utf-8"))
    return _decode_model(data)


def load_model_spec(path: Union[str, Path]) -> ModelSpec:
    """Load a model file (``.onnx`` protobuf or ``.json`` fallback)."""
    return loads_model_spec(Path(path).read_bytes())


def save_model_spec(spec: ModelSpec, path: Union[str, Path]) -> None:
    """Write ``spec`` to ``path``; ``.onnx`` gets protobuf, else JSON."""
    path = Path(path)
    if path.suffix == ".onnx":
        path.write_bytes(model_spec_to_bytes(spec))
    else:
        path.write_text(model_spec_to_json(spec))
