"""Declarative ONNX-op -> IR bridge table.

Every supported foreign operator gets one :class:`OpBridge` entry keyed on
``(domain, op_type)``.  A bridge is a small handler that translates one
:class:`~repro.frontend.serialize.NodeSpec` into IR nodes on an
:class:`ImportContext` — renaming attributes, adapting shape/dtype
conventions, or lowering a single foreign node into several IR nodes
(Gemm -> Transpose+MatMul+Add, GlobalAveragePool -> GlobalAvgPool+Reshape).

Two invariants keep imported graphs indistinguishable from built ones:

* **Attribute exactness.**  The structural hash stringifies attrs, so a
  bridge must reconstruct exactly the attr dict the corresponding
  :class:`~repro.ir.builder.GraphBuilder` method would have produced —
  same key set, tuples not lists, real bools not 0/1.  This is what makes
  the export -> import round-trip hash-identical.

* **Honest failure.**  A bridge that cannot express a node faithfully
  raises :class:`UnsupportedOp`; the importer then degrades the node to an
  opaque ``Custom`` fallback (declared output shape, counted pass-through)
  instead of mistranslating it.

Ops the IR can represent but ONNX cannot (fused ops, ``EnlargeConv``,
2-rank ``GlobalAvgPool``, opaque ``Custom`` nodes) travel under the
custom :data:`~repro.frontend.serialize.REPRO_DOMAIN` operator set; their
bridges reconstruct the IR node verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..ir.graph import Graph, NodeId
from ..ir.ops import OpType
from ..ir.tensor import TensorSpec
from .serialize import REPRO_DOMAIN, NodeSpec, TensorInfo

__all__ = ["BRIDGE", "OpBridge", "ImportContext", "UnsupportedOp",
           "register", "bridged_ops"]


class UnsupportedOp(Exception):
    """A bridge declining a node it cannot translate faithfully."""


@dataclass(frozen=True)
class OpBridge:
    """One row of the bridge table."""

    op_type: str
    domain: str
    handler: Callable[["ImportContext", NodeSpec], None]
    #: One-line lowering description for the coverage report.
    summary: str = ""


#: ``(domain, op_type) -> OpBridge``.  "" is the default ONNX domain.
BRIDGE: Dict[Tuple[str, str], OpBridge] = {}


def register(op_type: str, domain: str = "", summary: str = ""):
    """Class-level decorator adding a handler to :data:`BRIDGE`."""
    def deco(fn):
        BRIDGE[(domain, op_type)] = OpBridge(op_type, domain, fn, summary)
        return fn
    return deco


def bridged_ops(domain: str = "") -> List[str]:
    """Sorted op names bridged for ``domain``."""
    return sorted(op for (dom, op) in BRIDGE if dom == domain)


def _f32(value: float) -> float:
    """Undo float32 quantisation from the protobuf wire format.

    ``AttributeProto.f`` is a single-precision float, so ``0.1`` arrives
    as ``0.10000000149...``; six significant digits recover every
    human-entered constant and keep attr stringification (and therefore
    structural hashes) stable across a protobuf round-trip.
    """
    return float(f"{float(value):.6g}")


# ---------------------------------------------------------------------------
# Import context
# ---------------------------------------------------------------------------

class ImportContext:
    """Mutable state threaded through the bridges while importing a graph.

    Maps ONNX *value names* onto IR ``(node_id, output_slot)`` pairs.
    Initializers and Constant-node payloads are registered as *pending
    sources* and only materialised into Weight/Constant nodes when some
    bridge actually consumes them as tensors — values consumed as
    attribute data (Reshape targets, Slice bounds) never become nodes.
    """

    def __init__(self, graph: Graph):
        self.graph = graph
        self.env: Dict[str, Tuple[NodeId, int]] = {}
        #: value name -> flat numeric payload, for shape-feeding inputs.
        self.const_data: Dict[str, Tuple[float, ...]] = {}
        #: pending sources: value name -> (op_type, dims, dtype)
        self._pending: Dict[str, Tuple[OpType, Tuple[int, ...], str]] = {}
        self.notes: List[str] = []
        #: True when re-importing our own export (source_ranks present).
        #: Bridges then reconstruct only attrs the file actually carries,
        #: instead of materialising ONNX defaults — the original IR node
        #: may have relied on registry defaults, and hash fidelity demands
        #: the same omissions.  Foreign files keep the explicit defaults
        #: (ONNX and IR defaults disagree, e.g. zero-pad vs "same").
        self.faithful = False

    # -- sources -----------------------------------------------------------
    def add_initializer(self, tensor: TensorInfo) -> None:
        self._pending[tensor.name] = (OpType.WEIGHT, tuple(tensor.dims),
                                      tensor.dtype)
        if tensor.data is not None:
            self.const_data[tensor.name] = tuple(tensor.data)

    def add_constant(self, name: str, dims: Sequence[int],
                     data: Optional[Sequence[float]], dtype: str) -> None:
        self._pending[name] = (OpType.CONSTANT, tuple(dims), dtype)
        if data is not None:
            self.const_data[name] = tuple(data)

    def add_input(self, name: str, dims: Sequence[int], dtype: str) -> None:
        # Lazy like every other source: the Input node is created at first
        # consumption, so imported node ids follow consumption order and
        # the memoised topological order matches builder-constructed graphs.
        self._pending[name] = (OpType.INPUT, tuple(dims), dtype)

    def touch_graph_inputs(self, names: Sequence[str]) -> None:
        """Materialise pending graph Inputs among ``names``, in order.

        Called before each node is bridged: a model author necessarily
        creates an Input before the op (and the op's inline weights) that
        consumes it, so Inputs must claim their node ids before any
        sibling Weight operand does — this keeps the imported graph's
        topological order, and therefore its structural hash, aligned
        with builder-constructed graphs (the Embedding op consumes
        ``(table, indices)``, which would otherwise flip the order).
        """
        for name in names:
            pending = self._pending.get(name)
            if pending is not None and pending[0] is OpType.INPUT:
                self.value(name)

    # -- lookups -----------------------------------------------------------
    def has(self, name: str) -> bool:
        return bool(name) and (name in self.env or name in self._pending)

    def value(self, name: str) -> Tuple[NodeId, int]:
        """Resolve ``name`` to an IR input, materialising pending sources."""
        if name in self.env:
            return self.env[name]
        pending = self._pending.pop(name, None)
        if pending is None:
            raise UnsupportedOp(f"undefined value '{name}'")
        op_type, dims, dtype = pending
        nid = self.graph.add_node(op_type, (), {"shape": dims}, name)
        if dtype not in ("float32", "float64"):
            self.note(f"{op_type.value.lower()} '{name}' dtype {dtype} "
                      "coerced to float32")
        self.env[name] = (nid, 0)
        return self.env[name]

    def spec(self, name: str) -> TensorSpec:
        """Output spec of the value behind ``name`` (materialises it)."""
        nid, slot = self.value(name)
        return self.graph.nodes[nid].outputs[slot]

    def dims(self, name: str) -> Tuple[int, ...]:
        """Declared dims of ``name`` without materialising a node."""
        if name in self._pending:
            return self._pending[name][1]
        return tuple(self.spec(name).shape.dims)

    def const_ints(self, name: str) -> Optional[Tuple[int, ...]]:
        """Integer payload of ``name`` if it is a known constant."""
        data = self.const_data.get(name)
        if data is None:
            return None
        return tuple(int(v) for v in data)

    def const_floats(self, name: str) -> Optional[Tuple[float, ...]]:
        data = self.const_data.get(name)
        if data is None:
            return None
        return tuple(float(v) for v in data)

    # -- emission ----------------------------------------------------------
    def emit(self, op_type: OpType, inputs: Sequence, attrs=None,
             name: str = "") -> NodeId:
        """Add an IR node; shape-inference errors become UnsupportedOp."""
        try:
            return self.graph.add_node(op_type, tuple(inputs),
                                       dict(attrs or {}), name)
        except (ValueError, NotImplementedError) as exc:
            raise UnsupportedOp(str(exc)) from exc

    def bind(self, name: str, nid: NodeId, slot: int = 0) -> None:
        if name:
            self.env[name] = (nid, slot)

    def note(self, message: str) -> None:
        self.notes.append(message)


# ---------------------------------------------------------------------------
# Shared attribute helpers
# ---------------------------------------------------------------------------

def _square(values, what: str) -> int:
    values = tuple(int(v) for v in values)
    if len(values) != 2 or values[0] != values[1]:
        raise UnsupportedOp(f"non-square {what} {values}")
    return values[0]


def _padding_mode(node: NodeSpec, kernel: int) -> str:
    """Map ONNX padding attrs onto the IR's "same"/"valid" vocabulary."""
    auto_pad = node.attrs.get("auto_pad", "NOTSET")
    if auto_pad in ("SAME_UPPER", "SAME_LOWER"):
        return "same"
    if auto_pad == "VALID":
        return "valid"
    pads = tuple(int(p) for p in node.attrs.get("pads", ()))
    if not pads or not any(pads):
        return "valid"
    if all(p == (kernel - 1) // 2 for p in pads) and kernel % 2 == 1:
        return "same"
    raise UnsupportedOp(f"asymmetric pads {pads} for kernel {kernel}")


def _single_axis(ctx: ImportContext, node: NodeSpec, input_index: int = 1,
                 attr: str = "axes") -> int:
    """Resolve a one-element ``axes`` list from attr or const input."""
    axes = node.attrs.get(attr)
    if axes is None and len(node.inputs) > input_index:
        axes = ctx.const_ints(node.inputs[input_index])
    if axes is None:
        raise UnsupportedOp("axes unavailable (dynamic or defaulted)")
    axes = tuple(int(a) for a in axes)
    if len(axes) != 1:
        raise UnsupportedOp(f"multi-axis {axes} unsupported")
    return axes[0]


# ---------------------------------------------------------------------------
# Default-domain bridges: dense linear algebra
# ---------------------------------------------------------------------------

@register("Conv", summary="group attr dispatches Conv2D/GroupConv2D/DepthwiseConv2D")
def _conv(ctx: ImportContext, node: NodeSpec) -> None:
    if any(int(d) != 1 for d in node.attrs.get("dilations", (1, 1))):
        raise UnsupportedOp("dilated convolution")
    x = ctx.value(node.inputs[0])
    w = ctx.value(node.inputs[1])
    w_dims = ctx.graph.nodes[w[0]].outputs[w[1]].shape.dims
    if len(w_dims) != 4:
        raise UnsupportedOp(f"non-2D convolution weight {w_dims}")
    kernel = _square(node.attrs.get("kernel_shape", w_dims[2:4]), "kernel")
    stride = _square(node.attrs.get("strides", (1, 1)), "strides")
    padding = _padding_mode(node, kernel)
    group = int(node.attrs.get("group", 1))
    inputs = [x, w]
    if len(node.inputs) > 2 and ctx.has(node.inputs[2]):
        inputs.append(ctx.value(node.inputs[2]))
    in_channels = ctx.graph.nodes[x[0]].outputs[x[1]].shape.dims[1]
    attrs = {"stride": stride, "padding": padding, "kernel": kernel}
    if group == 1:
        op = OpType.CONV2D
    elif group == in_channels and w_dims[1] == 1:
        op = OpType.DEPTHWISE_CONV2D
    else:
        op = OpType.GROUP_CONV2D
        attrs["groups"] = group
    if ctx.faithful:
        if "kernel_shape" not in node.attrs:
            attrs.pop("kernel")
        if "strides" not in node.attrs:
            attrs.pop("stride")
        if "auto_pad" not in node.attrs and "pads" not in node.attrs:
            attrs.pop("padding")
    nid = ctx.emit(op, inputs, attrs, node.name)
    ctx.bind(node.outputs[0], nid)


@register("MatMul", summary="rank>2 on both sides selects BatchMatMul")
def _matmul(ctx: ImportContext, node: NodeSpec) -> None:
    a = ctx.value(node.inputs[0])
    b = ctx.value(node.inputs[1])
    # Rank-3 activations times a rank-2 weight is how the builder spells
    # Linear layers: that stays MatMul.  Only a genuinely batched product
    # (batch dims on both operands) becomes BatchMatMul.
    rank = min(len(ctx.graph.nodes[a[0]].outputs[a[1]].shape.dims),
               len(ctx.graph.nodes[b[0]].outputs[b[1]].shape.dims))
    op = OpType.BATCH_MATMUL if rank > 2 else OpType.MATMUL
    nid = ctx.emit(op, [a, b], name=node.name)
    ctx.bind(node.outputs[0], nid)


@register("Gemm", summary="lowered to [Transpose+]MatMul+Add (alpha=beta=1)")
def _gemm(ctx: ImportContext, node: NodeSpec) -> None:
    if _f32(node.attrs.get("alpha", 1.0)) != 1.0:
        raise UnsupportedOp("Gemm alpha != 1")
    if _f32(node.attrs.get("beta", 1.0)) != 1.0:
        raise UnsupportedOp("Gemm beta != 1")
    if int(node.attrs.get("transA", 0)):
        raise UnsupportedOp("Gemm transA")
    a = ctx.value(node.inputs[0])
    b = ctx.value(node.inputs[1])
    if int(node.attrs.get("transB", 0)):
        b = (ctx.emit(OpType.TRANSPOSE, [b], name=f"{node.name}_transB"), 0)
        ctx.note(f"Gemm '{node.name}': transB lowered to explicit Transpose")
    out = ctx.emit(OpType.MATMUL, [a, b], name=node.name)
    if len(node.inputs) > 2 and ctx.has(node.inputs[2]):
        out = ctx.emit(OpType.ADD, [out, ctx.value(node.inputs[2])],
                       name=f"{node.name}_bias")
    ctx.bind(node.outputs[0], out)


# ---------------------------------------------------------------------------
# Elementwise
# ---------------------------------------------------------------------------

def _register_binary(onnx_op: str, op_type: OpType) -> None:
    @register(onnx_op, summary="elementwise with numpy broadcasting")
    def handler(ctx: ImportContext, node: NodeSpec,
                _op: OpType = op_type) -> None:
        nid = ctx.emit(_op, [ctx.value(node.inputs[0]),
                             ctx.value(node.inputs[1])], name=node.name)
        ctx.bind(node.outputs[0], nid)


def _register_unary(onnx_op: str, op_type: OpType, summary: str = "") -> None:
    @register(onnx_op, summary=summary or "direct unary mapping")
    def handler(ctx: ImportContext, node: NodeSpec,
                _op: OpType = op_type) -> None:
        nid = ctx.emit(_op, [ctx.value(node.inputs[0])], name=node.name)
        ctx.bind(node.outputs[0], nid)


for _name, _op in (("Add", OpType.ADD), ("Sub", OpType.SUB),
                   ("Mul", OpType.MUL), ("Div", OpType.DIV)):
    _register_binary(_name, _op)

for _name, _op in (("Relu", OpType.RELU), ("Gelu", OpType.GELU),
                   ("Sigmoid", OpType.SIGMOID), ("Tanh", OpType.TANH),
                   ("Exp", OpType.EXP), ("Sqrt", OpType.SQRT),
                   ("Erf", OpType.ERF), ("Identity", OpType.IDENTITY)):
    _register_unary(_name, _op)


@register("Cast", summary="'to' dtype enum renamed to IR dtype string")
def _cast(ctx: ImportContext, node: NodeSpec) -> None:
    to = node.attrs.get("to", 1)
    dtype = {1: "float32", 6: "int32", 7: "int64", 9: "bool",
             10: "float16"}.get(int(to) if not isinstance(to, str) else 0,
                                to if isinstance(to, str) else "float32")
    nid = ctx.emit(OpType.CAST, [ctx.value(node.inputs[0])],
                   {"to": dtype}, node.name)
    ctx.bind(node.outputs[0], nid)


@register("Dropout", summary="ratio attr/input becomes 'rate'; mask output unsupported")
def _dropout(ctx: ImportContext, node: NodeSpec) -> None:
    rate: Optional[float] = _f32(node.attrs.get("ratio", 0.5))
    if len(node.inputs) > 1 and node.inputs[1]:
        ratio = ctx.const_floats(node.inputs[1])
        if ratio is None:
            raise UnsupportedOp("dynamic dropout ratio")
        rate = _f32(ratio[0])
    elif ctx.faithful and "ratio" not in node.attrs:
        rate = None  # the original node relied on the registry default
    attrs = {} if rate is None else {"rate": rate}
    nid = ctx.emit(OpType.DROPOUT, [ctx.value(node.inputs[0])],
                   attrs, node.name)
    ctx.bind(node.outputs[0], nid)


@register("Pow", summary="const exponent 2 -> Mul(x,x); 0.5 -> Sqrt; 1 -> Identity")
def _pow(ctx: ImportContext, node: NodeSpec) -> None:
    exponent = ctx.const_floats(node.inputs[1])
    if exponent is None or len(exponent) != 1:
        raise UnsupportedOp("non-constant Pow exponent")
    x = ctx.value(node.inputs[0])
    exp = exponent[0]
    if exp == 2.0:
        nid = ctx.emit(OpType.MUL, [x, x], name=node.name)
        ctx.note(f"Pow '{node.name}': x**2 lowered to Mul(x, x)")
    elif exp == 0.5:
        nid = ctx.emit(OpType.SQRT, [x], name=node.name)
    elif exp == 1.0:
        nid = ctx.emit(OpType.IDENTITY, [x], name=node.name)
    else:
        raise UnsupportedOp(f"Pow exponent {exp}")
    ctx.bind(node.outputs[0], nid)


@register("Neg", summary="lowered to Mul by a -1 constant")
def _neg(ctx: ImportContext, node: NodeSpec) -> None:
    x = ctx.value(node.inputs[0])
    neg_one = ctx.emit(OpType.CONSTANT, [], {"shape": (1,)},
                       f"{node.name}_neg1")
    nid = ctx.emit(OpType.MUL, [x, (neg_one, 0)], name=node.name)
    ctx.note(f"Neg '{node.name}': lowered to Mul by -1 constant")
    ctx.bind(node.outputs[0], nid)


# ---------------------------------------------------------------------------
# Normalisation
# ---------------------------------------------------------------------------

def _epsilon_attrs(node: NodeSpec) -> Dict[str, object]:
    # The builder stores no attrs for the default epsilon; matching that
    # exactly keeps imported graphs hash-identical to built ones.
    epsilon = _f32(node.attrs.get("epsilon", 1e-5))
    return {} if epsilon == 1e-5 else {"epsilon": epsilon}


@register("BatchNormalization",
          summary="(x, scale, bias) kept; running mean/var inputs dropped")
def _batchnorm(ctx: ImportContext, node: NodeSpec) -> None:
    if any(name for name in node.outputs[1:]):
        raise UnsupportedOp("training-mode BatchNormalization outputs")
    inputs = [ctx.value(node.inputs[0])]
    for name in node.inputs[1:3]:
        inputs.append(ctx.value(name))
    if len(node.inputs) > 3:
        ctx.note(f"BatchNormalization '{node.name}': running statistics "
                 "inputs dropped (inference-time folding)")
    nid = ctx.emit(OpType.BATCHNORM, inputs, _epsilon_attrs(node), node.name)
    ctx.bind(node.outputs[0], nid)


@register("LayerNormalization", summary="last-axis only; (x, scale, bias) inputs")
def _layernorm(ctx: ImportContext, node: NodeSpec) -> None:
    axis = int(node.attrs.get("axis", -1))
    x = ctx.value(node.inputs[0])
    rank = len(ctx.graph.nodes[x[0]].outputs[x[1]].shape.dims)
    if axis not in (-1, rank - 1):
        raise UnsupportedOp(f"LayerNormalization over axis {axis}")
    inputs = [x] + [ctx.value(n) for n in node.inputs[1:3] if n]
    nid = ctx.emit(OpType.LAYERNORM, inputs, _epsilon_attrs(node), node.name)
    ctx.bind(node.outputs[0], nid)


@register("Softmax", summary="axis attr (default -1) stored explicitly")
def _softmax(ctx: ImportContext, node: NodeSpec) -> None:
    nid = ctx.emit(OpType.SOFTMAX, [ctx.value(node.inputs[0])],
                   {"axis": int(node.attrs.get("axis", -1))}, node.name)
    ctx.bind(node.outputs[0], nid)


# ---------------------------------------------------------------------------
# Pooling
# ---------------------------------------------------------------------------

def _pool(ctx: ImportContext, node: NodeSpec, op_type: OpType) -> None:
    if int(node.attrs.get("ceil_mode", 0)):
        raise UnsupportedOp("ceil_mode pooling")
    if len(node.outputs) > 1 and node.outputs[1]:
        raise UnsupportedOp("pooling indices output")
    kernel = _square(node.attrs["kernel_shape"], "kernel")
    stride = _square(node.attrs.get("strides", (1, 1)), "strides")
    padding = _padding_mode(node, kernel)
    nid = ctx.emit(op_type, [ctx.value(node.inputs[0])],
                   {"kernel": kernel, "stride": stride, "padding": padding},
                   node.name)
    ctx.bind(node.outputs[0], nid)


@register("MaxPool", summary="square windows; ceil_mode/indices unsupported")
def _maxpool(ctx: ImportContext, node: NodeSpec) -> None:
    _pool(ctx, node, OpType.MAXPOOL2D)


@register("AveragePool", summary="square windows; count_include_pad ignored")
def _avgpool(ctx: ImportContext, node: NodeSpec) -> None:
    if int(node.attrs.get("count_include_pad", 0)):
        ctx.note(f"AveragePool '{node.name}': count_include_pad ignored")
    _pool(ctx, node, OpType.AVGPOOL2D)


@register("GlobalAveragePool",
          summary="lowered to GlobalAvgPool + Reshape back to [N,C,1,1]")
def _global_avgpool(ctx: ImportContext, node: NodeSpec) -> None:
    x = ctx.value(node.inputs[0])
    dims = ctx.graph.nodes[x[0]].outputs[x[1]].shape.dims
    if len(dims) != 4:
        raise UnsupportedOp(f"GlobalAveragePool on rank-{len(dims)} input")
    pooled = ctx.emit(OpType.GLOBAL_AVGPOOL, [x], name=node.name)
    nid = ctx.emit(OpType.RESHAPE, [pooled],
                   {"shape": (dims[0], dims[1], 1, 1)},
                   f"{node.name}_nchw")
    ctx.note(f"GlobalAveragePool '{node.name}': IR op emits [N,C]; "
             "Reshape restores [N,C,1,1]")
    ctx.bind(node.outputs[0], nid)


# ---------------------------------------------------------------------------
# Shape manipulation
# ---------------------------------------------------------------------------

@register("Reshape", summary="constant shape input resolved (0/-1 expanded)")
def _reshape(ctx: ImportContext, node: NodeSpec) -> None:
    target = node.attrs.get("shape")
    if target is None and len(node.inputs) > 1:
        target = ctx.const_ints(node.inputs[1])
    if target is None:
        raise UnsupportedOp("dynamic Reshape target")
    x = ctx.value(node.inputs[0])
    in_dims = ctx.graph.nodes[x[0]].outputs[x[1]].shape.dims
    dims = [int(d) for d in target]
    for i, d in enumerate(dims):
        if d == 0:
            if int(node.attrs.get("allowzero", 0)):
                raise UnsupportedOp("Reshape allowzero")
            dims[i] = in_dims[i]
    if dims.count(-1) > 1:
        raise UnsupportedOp(f"Reshape target {dims}")
    if -1 in dims:
        known = 1
        for d in dims:
            if d != -1:
                known *= d
        total = 1
        for d in in_dims:
            total *= d
        dims[dims.index(-1)] = total // max(known, 1)
    nid = ctx.emit(OpType.RESHAPE, [x], {"shape": tuple(dims)}, node.name)
    ctx.bind(node.outputs[0], nid)


@register("Transpose", summary="perm kept; ONNX and IR share the reverse default")
def _transpose(ctx: ImportContext, node: NodeSpec) -> None:
    perm = node.attrs.get("perm")
    attrs = {"perm": tuple(int(p) for p in perm)} if perm is not None else {}
    nid = ctx.emit(OpType.TRANSPOSE, [ctx.value(node.inputs[0])],
                   attrs, node.name)
    ctx.bind(node.outputs[0], nid)


@register("Concat", summary="negative axis normalised against input rank")
def _concat(ctx: ImportContext, node: NodeSpec) -> None:
    inputs = [ctx.value(n) for n in node.inputs]
    rank = len(ctx.graph.nodes[inputs[0][0]].outputs[inputs[0][1]].shape.dims)
    axis = int(node.attrs.get("axis", 0)) % rank
    nid = ctx.emit(OpType.CONCAT, inputs, {"axis": axis}, node.name)
    ctx.bind(node.outputs[0], nid)


@register("Split", summary="two equal parts only (the IR's Split arity)")
def _split(ctx: ImportContext, node: NodeSpec) -> None:
    if len(node.outputs) != 2:
        raise UnsupportedOp(f"{len(node.outputs)}-way Split")
    sizes = node.attrs.get("split")
    if sizes is None and len(node.inputs) > 1:
        sizes = ctx.const_ints(node.inputs[1])
    x = ctx.value(node.inputs[0])
    rank = len(ctx.graph.nodes[x[0]].outputs[x[1]].shape.dims)
    axis = int(node.attrs.get("axis", 0)) % rank
    if sizes is not None and len(set(int(s) for s in sizes)) != 1:
        raise UnsupportedOp(f"unequal Split sizes {tuple(sizes)}")
    nid = ctx.emit(OpType.SPLIT, [x], {"axis": axis, "parts": 2}, node.name)
    ctx.bind(node.outputs[0], nid, 0)
    ctx.bind(node.outputs[1], nid, 1)


@register("Slice", summary="single axis, unit step, constant bounds")
def _slice(ctx: ImportContext, node: NodeSpec) -> None:
    if len(node.inputs) >= 3:  # opset >= 10: bounds travel as inputs
        starts = ctx.const_ints(node.inputs[1])
        ends = ctx.const_ints(node.inputs[2])
        axes = (ctx.const_ints(node.inputs[3])
                if len(node.inputs) > 3 and node.inputs[3] else None)
        steps = (ctx.const_ints(node.inputs[4])
                 if len(node.inputs) > 4 and node.inputs[4] else None)
    else:  # opset 1 attribute form
        starts = node.attrs.get("starts")
        ends = node.attrs.get("ends")
        axes = node.attrs.get("axes")
        steps = None
    if starts is None or ends is None:
        raise UnsupportedOp("dynamic Slice bounds")
    if len(starts) != 1 or len(ends) != 1:
        raise UnsupportedOp("multi-axis Slice")
    if steps is not None and tuple(int(s) for s in steps) != (1,):
        raise UnsupportedOp(f"strided Slice {tuple(steps)}")
    x = ctx.value(node.inputs[0])
    dims = ctx.graph.nodes[x[0]].outputs[x[1]].shape.dims
    axis = int(axes[0]) % len(dims) if axes is not None else 0
    dim = dims[axis]
    start = int(starts[0])
    end = int(ends[0])
    start = max(start + dim, 0) if start < 0 else min(start, dim)
    end = max(end + dim, 0) if end < 0 else min(end, dim)
    nid = ctx.emit(OpType.SLICE, [x],
                   {"axis": axis, "start": start, "end": end}, node.name)
    ctx.bind(node.outputs[0], nid)


@register("Squeeze", summary="single constant axis")
def _squeeze(ctx: ImportContext, node: NodeSpec) -> None:
    x = ctx.value(node.inputs[0])
    rank = len(ctx.graph.nodes[x[0]].outputs[x[1]].shape.dims)
    axis = _single_axis(ctx, node) % rank
    nid = ctx.emit(OpType.SQUEEZE, [x], {"axis": axis}, node.name)
    ctx.bind(node.outputs[0], nid)


@register("Unsqueeze", summary="single constant axis")
def _unsqueeze(ctx: ImportContext, node: NodeSpec) -> None:
    x = ctx.value(node.inputs[0])
    rank = len(ctx.graph.nodes[x[0]].outputs[x[1]].shape.dims)
    axis = _single_axis(ctx, node) % (rank + 1)
    nid = ctx.emit(OpType.UNSQUEEZE, [x], {"axis": axis}, node.name)
    ctx.bind(node.outputs[0], nid)


@register("Flatten", summary="axis=1 maps to Flatten; other axes to Reshape")
def _flatten(ctx: ImportContext, node: NodeSpec) -> None:
    axis = int(node.attrs.get("axis", 1))
    x = ctx.value(node.inputs[0])
    dims = ctx.graph.nodes[x[0]].outputs[x[1]].shape.dims
    axis = axis % (len(dims) + 1) if axis < 0 else axis
    if axis == 1:
        nid = ctx.emit(OpType.FLATTEN, [x], name=node.name)
    else:
        head = 1
        for d in dims[:axis]:
            head *= d
        tail = 1
        for d in dims[axis:]:
            tail *= d
        nid = ctx.emit(OpType.RESHAPE, [x], {"shape": (head, tail)},
                       node.name)
        ctx.note(f"Flatten '{node.name}': axis={axis} lowered to Reshape")
    ctx.bind(node.outputs[0], nid)


@register("Pad", summary="constant mode; [begins..ends] reordered to interleaved")
def _pad(ctx: ImportContext, node: NodeSpec) -> None:
    if node.attrs.get("mode", "constant") != "constant":
        raise UnsupportedOp(f"Pad mode {node.attrs.get('mode')}")
    pads = node.attrs.get("pads")
    if pads is None and len(node.inputs) > 1:
        pads = ctx.const_ints(node.inputs[1])
    if pads is None:
        raise UnsupportedOp("dynamic Pad amounts")
    pads = tuple(int(p) for p in pads)
    rank = len(pads) // 2
    interleaved = []
    for i in range(rank):
        interleaved += [pads[i], pads[rank + i]]
    nid = ctx.emit(OpType.PAD, [ctx.value(node.inputs[0])],
                   {"pads": tuple(interleaved)}, node.name)
    ctx.bind(node.outputs[0], nid)


# ---------------------------------------------------------------------------
# Reductions
# ---------------------------------------------------------------------------

def _reduce(ctx: ImportContext, node: NodeSpec, op_type: OpType) -> None:
    axis = _single_axis(ctx, node)
    keepdims = bool(int(node.attrs.get("keepdims", 1)))
    nid = ctx.emit(op_type, [ctx.value(node.inputs[0])],
                   {"axis": int(axis), "keepdims": keepdims}, node.name)
    ctx.bind(node.outputs[0], nid)


@register("ReduceSum", summary="single axis; keepdims int becomes bool")
def _reduce_sum(ctx: ImportContext, node: NodeSpec) -> None:
    _reduce(ctx, node, OpType.REDUCE_SUM)


@register("ReduceMean", summary="single axis; keepdims int becomes bool")
def _reduce_mean(ctx: ImportContext, node: NodeSpec) -> None:
    _reduce(ctx, node, OpType.REDUCE_MEAN)


@register("ReduceMax", summary="single axis; keepdims int becomes bool")
def _reduce_max(ctx: ImportContext, node: NodeSpec) -> None:
    _reduce(ctx, node, OpType.REDUCE_MAX)


# ---------------------------------------------------------------------------
# Misc
# ---------------------------------------------------------------------------

@register("Gather", summary="axis=0 over a rank-2 table becomes Embedding")
def _gather(ctx: ImportContext, node: NodeSpec) -> None:
    table = ctx.value(node.inputs[0])
    indices = ctx.value(node.inputs[1])
    table_dims = ctx.graph.nodes[table[0]].outputs[table[1]].shape.dims
    axis = int(node.attrs.get("axis", 0)) % max(len(table_dims), 1)
    if axis == 0 and len(table_dims) == 2:
        nid = ctx.emit(OpType.EMBEDDING, [table, indices], name=node.name)
    else:
        nid = ctx.emit(OpType.GATHER, [table, indices],
                       {"axis": axis}, node.name)
    ctx.bind(node.outputs[0], nid)


@register("Constant", summary="payload registered; node materialised on demand")
def _constant(ctx: ImportContext, node: NodeSpec) -> None:
    value = node.attrs.get("value")
    if isinstance(value, TensorInfo):
        ctx.add_constant(node.outputs[0], value.dims, value.data, value.dtype)
        return
    for key, dtype in (("value_ints", "int64"), ("value_floats", "float32")):
        if key in node.attrs:
            data = tuple(node.attrs[key])
            ctx.add_constant(node.outputs[0], (len(data),), data, dtype)
            return
    for key, dtype in (("value_int", "int64"), ("value_float", "float32")):
        if key in node.attrs:
            ctx.add_constant(node.outputs[0], (), (node.attrs[key],), dtype)
            return
    raise UnsupportedOp("Constant without a readable payload")


# ---------------------------------------------------------------------------
# repro-domain bridges: IR ops with no standard ONNX spelling
# ---------------------------------------------------------------------------

def _verbatim_attrs(attrs: Dict[str, object]) -> Dict[str, object]:
    """Wire attrs -> IR attrs for repro-domain nodes (lists -> tuples)."""
    out: Dict[str, object] = {}
    for key, value in attrs.items():
        if isinstance(value, (list, tuple)):
            out[key] = tuple(int(v) for v in value)
        elif key == "keepdims":
            out[key] = bool(value)
        else:
            out[key] = value
    return out


def _register_repro(onnx_op: str, op_type: OpType, summary: str) -> None:
    @register(onnx_op, domain=REPRO_DOMAIN, summary=summary)
    def handler(ctx: ImportContext, node: NodeSpec,
                _op: OpType = op_type) -> None:
        inputs = [ctx.value(n) for n in node.inputs]
        nid = ctx.emit(_op, inputs, _verbatim_attrs(node.attrs), node.name)
        for slot, out_name in enumerate(node.outputs):
            ctx.bind(out_name, nid, slot)


for _name, _op, _summary in (
    ("MatMul", OpType.MATMUL, "MatMul whose rank pattern reads as batched"),
    ("BatchMatMul", OpType.BATCH_MATMUL, "BatchMatMul with a rank-2 operand"),
    ("Gather", OpType.GATHER, "IR Gather (ambiguous vs Embedding in ONNX)"),
    ("GlobalAvgPool", OpType.GLOBAL_AVGPOOL, "rank-2 [N,C] global pool"),
    ("EnlargeConv", OpType.ENLARGE_CONV, "TASO kernel-enlargement op"),
    ("FusedConvBN", OpType.FUSED_CONV_BN, "fused Conv+BatchNorm"),
    ("FusedConvRelu", OpType.FUSED_CONV_RELU, "fused Conv+Relu"),
    ("FusedConvBNRelu", OpType.FUSED_CONV_BN_RELU, "fused Conv+BN+Relu"),
    ("FusedMatMulAdd", OpType.FUSED_MATMUL_ADD, "fused MatMul+bias"),
    ("Split", OpType.SPLIT, "IR two-way Split with explicit parts attr"),
    ("Flatten", OpType.FLATTEN, "IR attr-less Flatten"),
    ("Reshape", OpType.RESHAPE, "IR Reshape with resolved shape attr"),
    ("GroupConv2D", OpType.GROUP_CONV2D,
     "grouped conv whose shape would read as depthwise"),
):
    _register_repro(_name, _op, _summary)


@register("Constant", domain=REPRO_DOMAIN,
          summary="IR Constant source (synthetic payload)")
def _repro_constant(ctx: ImportContext, node: NodeSpec) -> None:
    shape = tuple(int(d) for d in node.attrs.get("shape", ()))
    ctx.add_constant(node.outputs[0], shape, None, "float32")


@register("Custom", domain=REPRO_DOMAIN,
          summary="opaque foreign op with declared output spec")
def _repro_custom(ctx: ImportContext, node: NodeSpec) -> None:
    inputs = [ctx.value(n) for n in node.inputs]
    nid = ctx.emit(
        OpType.CUSTOM, inputs,
        {"op": str(node.attrs.get("op", node.name or "?")),
         "shape": tuple(int(d) for d in node.attrs.get("shape", ())),
         "dtype": str(node.attrs.get("dtype", "float32"))},
        node.name)
    ctx.bind(node.outputs[0], nid)
