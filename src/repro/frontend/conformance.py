"""Per-op importer conformance cases.

:data:`CONFORMANCE_CASES` maps every bridged default-domain ONNX op name to
a builder returning a minimal :class:`~repro.frontend.serialize.ModelSpec`
exercising that bridge.  The suite in ``tests/frontend`` imports each case
(asserting zero fallbacks and a correct executed shape) and the coverage
tool ``tools/check_import_coverage.py`` fails CI if a bridged op ever loses
its case here.

Keys match bridge-table registrations exactly — adding a bridge without a
matching case (or vice versa) is a test failure, not a silent gap.
"""

from __future__ import annotations

from typing import Callable, Dict

from .serialize import ModelSpec, TensorInfo
from .zoo import SpecBuilder

__all__ = ["CONFORMANCE_CASES"]

CONFORMANCE_CASES: Dict[str, Callable[[], ModelSpec]] = {}


def case(op: str):
    def wrap(fn: Callable[[], ModelSpec]) -> Callable[[], ModelSpec]:
        CONFORMANCE_CASES[op] = fn
        return fn
    return wrap


def _binary(op: str) -> Callable[[], ModelSpec]:
    @case(op)
    def build() -> ModelSpec:
        b = SpecBuilder(f"conf-{op.lower()}")
        x = b.input("x", (2, 4))
        w = b.init("w", (2, 4))
        y = b.node(op, [x, w])
        b.output(y, (2, 4))
        return b.finish()
    return build


def _unary(op: str) -> Callable[[], ModelSpec]:
    @case(op)
    def build() -> ModelSpec:
        b = SpecBuilder(f"conf-{op.lower()}")
        x = b.input("x", (2, 4))
        y = b.node(op, [x])
        b.output(y, (2, 4))
        return b.finish()
    return build


for _op in ("Add", "Sub", "Mul", "Div"):
    _binary(_op)
for _op in ("Relu", "Gelu", "Sigmoid", "Tanh", "Exp", "Sqrt", "Erf",
            "Identity", "Neg"):
    _unary(_op)


@case("MatMul")
def _matmul() -> ModelSpec:
    b = SpecBuilder("conf-matmul")
    x = b.input("x", (2, 8))
    w = b.init("w", (8, 4))
    y = b.node("MatMul", [x, w])
    b.output(y, (2, 4))
    return b.finish()


@case("Gemm")
def _gemm() -> ModelSpec:
    b = SpecBuilder("conf-gemm")
    x = b.input("x", (2, 8))
    w = b.init("w", (4, 8))
    bias = b.init("b", (4,))
    y = b.node("Gemm", [x, w, bias], {"transB": 1})
    b.output(y, (2, 4))
    return b.finish()


@case("Conv")
def _conv() -> ModelSpec:
    b = SpecBuilder("conf-conv")
    x = b.input("x", (1, 3, 8, 8))
    w = b.init("w", (4, 3, 3, 3))
    y = b.node("Conv", [x, w], {"kernel_shape": (3, 3), "strides": (1, 1),
                                "auto_pad": "SAME_UPPER"})
    b.output(y, (1, 4, 8, 8))
    return b.finish()


@case("BatchNormalization")
def _batchnorm() -> ModelSpec:
    b = SpecBuilder("conf-batchnorm")
    x = b.input("x", (1, 4, 8, 8))
    args = [b.init(n, (4,)) for n in ("scale", "bias", "mean", "var")]
    y = b.node("BatchNormalization", [x] + args, {"epsilon": 1e-5})
    b.output(y, (1, 4, 8, 8))
    return b.finish()


@case("LayerNormalization")
def _layernorm() -> ModelSpec:
    b = SpecBuilder("conf-layernorm")
    x = b.input("x", (2, 8, 16))
    scale = b.init("scale", (16,))
    bias = b.init("bias", (16,))
    y = b.node("LayerNormalization", [x, scale, bias],
               {"epsilon": 1e-5, "axis": -1})
    b.output(y, (2, 8, 16))
    return b.finish()


@case("Softmax")
def _softmax() -> ModelSpec:
    b = SpecBuilder("conf-softmax")
    x = b.input("x", (2, 8))
    y = b.node("Softmax", [x], {"axis": -1})
    b.output(y, (2, 8))
    return b.finish()


@case("MaxPool")
def _maxpool() -> ModelSpec:
    b = SpecBuilder("conf-maxpool")
    x = b.input("x", (1, 4, 8, 8))
    y = b.node("MaxPool", [x], {"kernel_shape": (2, 2), "strides": (2, 2)})
    b.output(y, (1, 4, 4, 4))
    return b.finish()


@case("AveragePool")
def _avgpool() -> ModelSpec:
    b = SpecBuilder("conf-avgpool")
    x = b.input("x", (1, 4, 8, 8))
    y = b.node("AveragePool", [x],
               {"kernel_shape": (2, 2), "strides": (2, 2)})
    b.output(y, (1, 4, 4, 4))
    return b.finish()


@case("GlobalAveragePool")
def _global_avgpool() -> ModelSpec:
    b = SpecBuilder("conf-globalavgpool")
    x = b.input("x", (1, 4, 8, 8))
    y = b.node("GlobalAveragePool", [x])
    b.output(y, (1, 4, 1, 1))
    return b.finish()


@case("Reshape")
def _reshape() -> ModelSpec:
    b = SpecBuilder("conf-reshape")
    x = b.input("x", (2, 8))
    y = b.node("Reshape", [x, b.const_shape((4, -1))])
    b.output(y, (4, 4))
    return b.finish()


@case("Transpose")
def _transpose() -> ModelSpec:
    b = SpecBuilder("conf-transpose")
    x = b.input("x", (2, 8))
    y = b.node("Transpose", [x], {"perm": (1, 0)})
    b.output(y, (8, 2))
    return b.finish()


@case("Concat")
def _concat() -> ModelSpec:
    b = SpecBuilder("conf-concat")
    x = b.input("x", (2, 4))
    w = b.init("w", (2, 4))
    y = b.node("Concat", [x, w], {"axis": -1})
    b.output(y, (2, 8))
    return b.finish()


@case("Split")
def _split() -> ModelSpec:
    b = SpecBuilder("conf-split")
    x = b.input("x", (2, 8))
    lhs, rhs = b.node("Split", [x], {"axis": 1}, num_outputs=2)
    b.output(lhs, (2, 4))
    b.output(rhs, (2, 4))
    return b.finish()


@case("Slice")
def _slice() -> ModelSpec:
    b = SpecBuilder("conf-slice")
    x = b.input("x", (2, 8))
    starts = b.init("starts", (1,), "int64", [2])
    ends = b.init("ends", (1,), "int64", [6])
    axes = b.init("axes", (1,), "int64", [1])
    y = b.node("Slice", [x, starts, ends, axes])
    b.output(y, (2, 4))
    return b.finish()


@case("Squeeze")
def _squeeze() -> ModelSpec:
    b = SpecBuilder("conf-squeeze")
    x = b.input("x", (2, 1, 4))
    axes = b.init("axes", (1,), "int64", [1])
    y = b.node("Squeeze", [x, axes])
    b.output(y, (2, 4))
    return b.finish()


@case("Unsqueeze")
def _unsqueeze() -> ModelSpec:
    b = SpecBuilder("conf-unsqueeze")
    x = b.input("x", (2, 4))
    y = b.node("Unsqueeze", [x], {"axes": (0,)})
    b.output(y, (1, 2, 4))
    return b.finish()


@case("Flatten")
def _flatten() -> ModelSpec:
    b = SpecBuilder("conf-flatten")
    x = b.input("x", (2, 4, 3))
    y = b.node("Flatten", [x], {"axis": 1})
    b.output(y, (2, 12))
    return b.finish()


@case("Pad")
def _pad() -> ModelSpec:
    b = SpecBuilder("conf-pad")
    x = b.input("x", (2, 4))
    # ONNX layout: [begin_0, begin_1, end_0, end_1]
    y = b.node("Pad", [x], {"mode": "constant", "pads": (0, 1, 0, 1)})
    b.output(y, (2, 6))
    return b.finish()


def _reduce_case(op: str) -> Callable[[], ModelSpec]:
    @case(op)
    def build() -> ModelSpec:
        b = SpecBuilder(f"conf-{op.lower()}")
        x = b.input("x", (2, 4, 8))
        y = b.node(op, [x], {"axes": (1,), "keepdims": 0})
        b.output(y, (2, 8))
        return b.finish()
    return build


for _op in ("ReduceSum", "ReduceMean", "ReduceMax"):
    _reduce_case(_op)


@case("Gather")
def _gather() -> ModelSpec:
    b = SpecBuilder("conf-gather")
    table = b.init("table", (16, 8))
    idx = b.input("idx", (2, 4), "int64")
    y = b.node("Gather", [table, idx], {"axis": 0})
    b.output(y, (2, 4, 8))
    return b.finish()


@case("Cast")
def _cast() -> ModelSpec:
    b = SpecBuilder("conf-cast")
    x = b.input("x", (2, 4))
    y = b.node("Cast", [x], {"to": 6})  # ONNX enum 6 == int32
    b.output(y, (2, 4), "int32")
    return b.finish()


@case("Dropout")
def _dropout() -> ModelSpec:
    b = SpecBuilder("conf-dropout")
    x = b.input("x", (2, 4))
    y = b.node("Dropout", [x], {"ratio": 0.5})
    b.output(y, (2, 4))
    return b.finish()


@case("Pow")
def _pow() -> ModelSpec:
    b = SpecBuilder("conf-pow")
    x = b.input("x", (2, 4))
    exp = b.init("exp", (1,), data=[2.0])
    y = b.node("Pow", [x, exp])
    b.output(y, (2, 4))
    return b.finish()


@case("Constant")
def _constant() -> ModelSpec:
    b = SpecBuilder("conf-constant")
    x = b.input("x", (2, 4))
    c = b.node("Constant", [],
               {"value": TensorInfo("c_val", (2, 4), "float32",
                                    tuple(float(i) for i in range(8)))})
    y = b.node("Add", [x, c])
    b.output(y, (2, 4))
    return b.finish()
