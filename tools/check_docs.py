#!/usr/bin/env python3
"""Documentation checks run by CI (and by ``tests/docs/test_docs.py``).

Two checks, selected by flag:

``--links [FILES...]``
    Validate every relative markdown link in the given files (default:
    ``README.md`` + ``docs/**/*.md``): the target file must exist, and a
    ``#fragment`` must match a heading in the target (GitHub slug rules).
    External ``http(s)``/``mailto`` links are not fetched.

``--docstrings [PACKAGE_DIRS...]``
    Fail on public symbols without docstrings (default:
    ``src/repro/service``): module docstrings, public module-level
    classes/functions, and public methods (anything whose name does not
    start with ``_``).

Exit code 0 when clean, 1 with a per-problem report otherwise.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path
from typing import Iterable, List

REPO_ROOT = Path(__file__).resolve().parents[1]

#: ``[text](target)`` — markdown inline links (images share the syntax).
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading (sans duplicate suffixes)."""
    text = heading.strip().lower()
    text = re.sub(r"[`*_]", "", text)           # inline formatting
    text = re.sub(r"[^\w\- ]", "", text)        # punctuation
    return text.replace(" ", "-")


def heading_slugs(markdown: str) -> List[str]:
    """Every anchor a markdown document exposes, duplicates suffixed."""
    slugs: List[str] = []
    seen: dict = {}
    without_code = _CODE_FENCE_RE.sub("", markdown)
    for match in _HEADING_RE.finditer(without_code):
        slug = github_slug(match.group(1))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        slugs.append(slug if count == 0 else f"{slug}-{count}")
    return slugs


def check_links(files: Iterable[Path]) -> List[str]:
    """Return a problem line per broken relative link / anchor."""
    problems: List[str] = []
    for path in files:
        text = path.read_text()
        # Links inside code fences are examples, not navigation.
        checkable = _CODE_FENCE_RE.sub("", text)
        for match in _LINK_RE.finditer(checkable):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            ref, _, fragment = target.partition("#")
            if ref:
                resolved = (path.parent / ref).resolve()
                if not resolved.exists():
                    problems.append(f"{path}: broken link -> {target}")
                    continue
            else:
                resolved = path
            if fragment:
                if resolved.suffix != ".md":
                    continue
                slugs = heading_slugs(resolved.read_text())
                if fragment not in slugs:
                    problems.append(
                        f"{path}: broken anchor -> {target} "
                        f"(no heading slug {fragment!r} in {resolved.name})")
    return problems


def _missing_docstrings(tree: ast.Module, path: Path) -> List[str]:
    problems: List[str] = []
    if ast.get_docstring(tree) is None:
        problems.append(f"{path}: module has no docstring")

    def visit(body, prefix: str) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                if node.name.startswith("_"):
                    continue
                if ast.get_docstring(node) is None:
                    kind = ("class" if isinstance(node, ast.ClassDef)
                            else "function")
                    problems.append(
                        f"{path}:{node.lineno}: public {kind} "
                        f"{prefix}{node.name} has no docstring")
                if isinstance(node, ast.ClassDef):
                    visit(node.body, f"{prefix}{node.name}.")

    visit(tree.body, "")
    return problems


def check_docstrings(package_dirs: Iterable[Path]) -> List[str]:
    """Return a problem line per undocumented public symbol."""
    problems: List[str] = []
    for package in package_dirs:
        for path in sorted(package.rglob("*.py")):
            tree = ast.parse(path.read_text(), filename=str(path))
            problems.extend(_missing_docstrings(tree, path))
    return problems


def default_doc_files() -> List[Path]:
    """README plus everything under docs/."""
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").rglob("*.md")))
    return [f for f in files if f.exists()]


def main(argv: List[str] = None) -> int:
    """CLI entry point; returns the exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--links", action="store_true",
                        help="check relative markdown links and anchors")
    parser.add_argument("--docstrings", action="store_true",
                        help="check docstring coverage of public symbols")
    parser.add_argument("paths", nargs="*",
                        help="files (--links) or package dirs (--docstrings)")
    args = parser.parse_args(argv)
    if not args.links and not args.docstrings:
        parser.error("pass --links and/or --docstrings")

    problems: List[str] = []
    if args.links:
        files = ([Path(p) for p in args.paths] if args.paths
                 else default_doc_files())
        problems.extend(check_links(files))
    if args.docstrings:
        packages = ([Path(p) for p in args.paths] if args.paths
                    else [REPO_ROOT / "src" / "repro" / "service"])
        problems.extend(check_docstrings(packages))

    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} documentation problem(s)", file=sys.stderr)
        return 1
    print("docs ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
