#!/usr/bin/env python3
"""Benchmark-regression gate run by CI (and by ``tests/tools``).

Compares a *fresh* benchmark results file (written by the smoke run in
the CI workspace) against the *committed baseline* (the same file as of
the last commit) and fails on regressed key speedups::

    python tools/check_bench.py \\
        --baseline /tmp/baseline/BENCH_search.json \\
        --fresh BENCH_search.json

Two comparison modes, chosen automatically from the fresh file's
``smoke`` flag (override with ``--smoke`` / ``--full``):

* **full** — fresh and baseline were produced by comparable runs: every
  gated speedup must reach ``(1 - tolerance)`` of the committed value
  (tolerance defaults to 0.30, the ">30% regression" bar).
* **smoke** — the fresh run used reduced budgets, so committed full-run
  magnitudes are not comparable; each gated speedup is instead checked
  against an absolute floor mirroring the benchmark suite's own
  assertions (e.g. warm cache ≥ 10x).

Only the *gated* keys listed in :data:`GATES` are enforced.  A gated key
missing from the fresh file fails (the benchmark silently did not run);
one missing from the baseline is reported but passes (first run of a new
benchmark).

Parallel-scaling ratios are *core-aware* (:data:`CORE_GATES`): sharding
CPU-bound search over processes cannot beat serial on a one-core box, so
those floors consult the ``cores`` count the benchmark records alongside
the speedup — >=1.2x when the recording host had real cores to scale
onto, and only a pathological-overhead floor otherwise.  Core gates are
absolute in both modes (the magnitude depends on the recording host, not
on the run's budgets).

Correctness witnesses (:data:`REQUIRED_POSITIVE` /
:data:`REQUIRED_LITERAL`) are enforced in *both* modes: the RL bench
records how many incremental-GNN equivalence checks actually ran, and a
run whose equivalence gate was skipped fails here regardless of its
speedups.

Exit code 0 when clean, 1 with a per-problem report otherwise.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

#: Default allowed fractional regression vs the committed baseline.
DEFAULT_TOLERANCE = 0.30

#: Gated speedup keys per benchmark file: ``pattern -> smoke floor``.
#: Patterns are ``fnmatch`` globs over dotted key paths under ``results``;
#: the smoke floor mirrors the corresponding benchmark's own assertion.
GATES: Dict[str, Dict[str, float]] = {
    "BENCH_search.json": {
        "candidate_throughput.*.speedup": 3.0,
        "taso_end_to_end.*.speedup": 2.0,
        # Executed (numpy) latency of the TASO-optimised graph vs its
        # input: wins are genuinely small on reduced-size graphs, so the
        # smoke floor is "never slower beyond timer noise".
        "measured_end_to_end.*.speedup": 0.97,
    },
    "BENCH_service.json": {
        "cold_vs_warm.speedup": 10.0,
        "warm_shared_cache.speedup": 1.0,
        "dedup_under_contention.speedup": 1.0,
        "dispatch_skewed_load.speedup": 1.0,
        "cross_process_dedup.speedup": 1.0,
    },
    "BENCH_exec.json": {
        # Floors, not latencies: calibration can never make the fit worse
        # (the identity scaling is in the search grid), and the
        # differential sweep must pass outright.  Raw execute_ms values
        # are recorded but not gated — lower is better, so a floor would
        # be meaningless.
        "calibration.improvement": 1.0,
        "equivalence.pass_rate": 1.0,
    },
    "BENCH_rl.json": {
        "observation_encoding.*.speedup": 1.2,
        "env_steps.*.speedup": 1.1,
        "env_steps.*.stages.act_speedup": 1.2,
        "env_steps.*.stages.step_speedup": 1.1,
        "env_steps.*.stages.match_speedup": 1.0,
        "env_steps.*.lru.observation_hit_rate": 0.1,
        "env_steps.*.lru.decision_hit_rate": 0.1,
        "env_steps.*.lru.embed_state_hit_rate": 0.25,
        "env_steps.*.lru.match_state_hit_rate": 0.2,
        "env_steps.*.lru.flat_ids_hit_rate": 0.4,
        "ppo_update.*.speedup": 1.1,
    },
}

#: Core-aware scaling gates, enforced as absolute floors in both modes:
#: ``pattern -> (cores key, multi-core floor, single-core floor)``.  The
#: multi-core floor applies when the *fresh* results record >=2 cores
#: under the cores key; otherwise only the single-core floor (which
#: catches pathological overhead such as re-shipping whole graphs every
#: iteration) is enforced and the scaling stays informational.
CORE_GATES: Dict[str, Dict[str, Tuple[str, float, float]]] = {
    "BENCH_service.json": {
        "parallel_scaling.speedup": ("parallel_scaling.cores", 1.2, 0.15),
    },
    "BENCH_search.json": {
        "intra_search_parallel.*.speedup":
            ("intra_search_parallel.cores", 1.2, 0.15),
    },
}

#: Correctness witnesses: numeric key patterns that must be present in the
#: *fresh* results with a strictly positive value, in smoke and full mode
#: alike.  They record that a verification gate actually executed — a
#: benchmark run that silently skipped its equivalence check must fail
#: here rather than pass quietly.  A pattern matching *no* fresh key is
#: itself a failure.
REQUIRED_POSITIVE: Dict[str, Tuple[str, ...]] = {
    "BENCH_rl.json": ("env_steps.*.equivalence.embedder_checks",),
    "BENCH_exec.json": (
        "equivalence.rules_checked",
        "equivalence.optimiser_checks",
        "calibration.samples",
        "models.*.execute_ms",
    ),
    "BENCH_search.json": (
        "intra_search_parallel.*.equivalence.rules_checked",
        "intra_search_parallel.cores",
        "measured_end_to_end.*.rules_applied",
    ),
    "BENCH_service.json": (
        "parallel_scaling.equivalence.models_checked",
        "parallel_scaling.cores",
    ),
}

#: String leaves that must equal an expected literal in the fresh results
#: (same matching-and-presence rules as :data:`REQUIRED_POSITIVE`).
REQUIRED_LITERAL: Dict[str, Dict[str, str]] = {
    "BENCH_rl.json": {
        "env_steps.*.equivalence.trajectory_float64": "passed",
    },
    "BENCH_exec.json": {
        "equivalence.status": "passed",
    },
    "BENCH_search.json": {
        "intra_search_parallel.*.equivalence.final_hash": "matched",
        "intra_search_parallel.*.equivalence.final_cost_float64": "matched",
    },
    "BENCH_service.json": {
        "parallel_scaling.equivalence.final_hash": "matched",
        "parallel_scaling.equivalence.final_cost_float64": "matched",
    },
}


def flatten_numbers(doc: Mapping[str, Any], prefix: str = "") -> Dict[str, float]:
    """Dotted-path → value for every numeric leaf of a nested mapping."""
    leaves: Dict[str, float] = {}
    for key, value in doc.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, Mapping):
            leaves.update(flatten_numbers(value, path))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            leaves[path] = float(value)
    return leaves


def flatten_strings(doc: Mapping[str, Any], prefix: str = "") -> Dict[str, str]:
    """Dotted-path → value for every string leaf of a nested mapping."""
    leaves: Dict[str, str] = {}
    for key, value in doc.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, Mapping):
            leaves.update(flatten_strings(value, path))
        elif isinstance(value, str):
            leaves[path] = value
    return leaves


def gated_keys(leaves: Mapping[str, float],
               gates: Mapping[str, float]) -> Dict[str, float]:
    """The subset of ``leaves`` matching any gate pattern → its floor."""
    floors: Dict[str, float] = {}
    for path in leaves:
        for pattern, floor in gates.items():
            if fnmatch.fnmatchcase(path, pattern):
                floors[path] = floor
                break
    return floors


def evaluate(baseline: Mapping[str, Any], fresh: Mapping[str, Any],
             gates: Mapping[str, float], smoke: bool,
             tolerance: float = DEFAULT_TOLERANCE,
             required_positive: Tuple[str, ...] = (),
             required_literal: Optional[Mapping[str, str]] = None,
             core_gates: Optional[
                 Mapping[str, Tuple[str, float, float]]] = None,
             ) -> Tuple[List[str], List[str]]:
    """Compare one fresh results document against its baseline.

    Args:
        baseline: The committed benchmark JSON document.
        fresh: The just-produced benchmark JSON document.
        gates: ``pattern -> smoke floor`` for this file (see
            :data:`GATES`).
        smoke: Gate against absolute floors instead of baseline ratios.
        tolerance: Allowed fractional regression in full mode.
        required_positive: Patterns for numeric witnesses that must be
            present and > 0 in the fresh results in either mode.
        required_literal: ``pattern -> expected`` for string witnesses
            that must be present and equal in the fresh results.
        core_gates: ``pattern -> (cores key, multi-core floor,
            single-core floor)`` scaling gates (see :data:`CORE_GATES`),
            applied as absolute floors in both modes.

    Returns:
        ``(problems, notes)`` — failures and informational lines.
    """
    baseline_leaves = flatten_numbers(baseline.get("results", {}))
    fresh_leaves = flatten_numbers(fresh.get("results", {}))
    problems: List[str] = []
    notes: List[str] = []

    for pattern in required_positive:
        matched = sorted(p for p in fresh_leaves
                         if fnmatch.fnmatchcase(p, pattern))
        if not matched:
            problems.append(f"{pattern}: no matching key in the fresh "
                            f"results (equivalence gate skipped?)")
        for path in matched:
            value = fresh_leaves[path]
            if value > 0:
                notes.append(f"{path}: {value:g} > 0 (gate executed)")
            else:
                problems.append(f"{path}: {value:g} — the correctness "
                                f"gate never executed")

    fresh_strings = flatten_strings(fresh.get("results", {}))
    for pattern, expected in (required_literal or {}).items():
        matched = sorted(p for p in fresh_strings
                         if fnmatch.fnmatchcase(p, pattern))
        if not matched:
            problems.append(f"{pattern}: no matching key in the fresh "
                            f"results (equivalence gate skipped?)")
        for path in matched:
            value = fresh_strings[path]
            if value == expected:
                notes.append(f"{path}: {value!r}")
            else:
                problems.append(f"{path}: {value!r} != expected "
                                f"{expected!r}")

    # Gate every key the *union* matches, so a benchmark that silently
    # stopped recording (present in baseline, absent fresh) still fails.
    union = dict(fresh_leaves)
    for path, value in baseline_leaves.items():
        union.setdefault(path, value)

    for pattern, (cores_key, multi_floor, single_floor) in \
            (core_gates or {}).items():
        matched = sorted(p for p in union if fnmatch.fnmatchcase(p, pattern))
        if not matched:
            problems.append(f"{pattern}: no matching key in the fresh "
                            f"results (benchmark did not run?)")
        cores = int(fresh_leaves.get(cores_key, 1))
        floor = multi_floor if cores >= 2 else single_floor
        for path in matched:
            fresh_value = fresh_leaves.get(path)
            if fresh_value is None:
                problems.append(f"{path}: missing from the fresh results "
                                f"(benchmark did not run?)")
            elif fresh_value < floor:
                problems.append(
                    f"{path}: {fresh_value:.3f}x is below the core-aware "
                    f"floor {floor:.2f}x ({cores}-core recording)")
            else:
                notes.append(f"{path}: {fresh_value:.3f}x >= core-aware "
                             f"floor {floor:.2f}x ({cores}-core recording)")

    floors = gated_keys(union, gates)

    for path in sorted(floors):
        floor = floors[path]
        fresh_value = fresh_leaves.get(path)
        base_value = baseline_leaves.get(path)
        if fresh_value is None:
            problems.append(f"{path}: missing from the fresh results "
                            f"(benchmark did not run?)")
            continue
        if smoke:
            if fresh_value < floor:
                problems.append(f"{path}: {fresh_value:.3f}x is below the "
                                f"smoke floor {floor:.3f}x")
            else:
                notes.append(f"{path}: {fresh_value:.3f}x >= floor "
                             f"{floor:.3f}x")
            continue
        if base_value is None:
            notes.append(f"{path}: {fresh_value:.3f}x (no committed "
                         f"baseline yet)")
            continue
        required = (1.0 - tolerance) * base_value
        if fresh_value < required:
            problems.append(
                f"{path}: {fresh_value:.3f}x regressed more than "
                f"{100 * tolerance:.0f}% vs committed {base_value:.3f}x "
                f"(needs >= {required:.3f}x)")
        else:
            notes.append(f"{path}: {fresh_value:.3f}x vs committed "
                         f"{base_value:.3f}x")
    return problems, notes


def _load(path: Path) -> Dict[str, Any]:
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: cannot read benchmark file {path}: {exc}")


def check_file(baseline_path: Path, fresh_path: Path,
               smoke: Optional[bool] = None,
               tolerance: float = DEFAULT_TOLERANCE,
               ) -> Tuple[List[str], List[str], bool]:
    """Run the gate for one baseline/fresh file pair.

    ``smoke=None`` reads the mode from the fresh file's ``smoke`` flag.

    Returns:
        ``(problems, notes, smoke)`` with the mode actually applied.
    """
    gates = GATES.get(fresh_path.name)
    if gates is None:
        raise SystemExit(f"error: no gates defined for {fresh_path.name} "
                         f"(known: {sorted(GATES)})")
    fresh = _load(fresh_path)
    baseline = _load(baseline_path)
    if smoke is None:
        smoke = bool(fresh.get("smoke"))
    problems, notes = evaluate(
        baseline, fresh, gates, smoke=smoke, tolerance=tolerance,
        required_positive=REQUIRED_POSITIVE.get(fresh_path.name, ()),
        required_literal=REQUIRED_LITERAL.get(fresh_path.name),
        core_gates=CORE_GATES.get(fresh_path.name))
    return problems, notes, smoke


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        description="Fail on benchmark speedup regressions.")
    parser.add_argument("--baseline", action="append", default=[],
                        type=Path, required=True,
                        help="committed benchmark JSON (repeatable; paired "
                             "with --fresh by filename)")
    parser.add_argument("--fresh", action="append", default=[], type=Path,
                        required=True,
                        help="freshly produced benchmark JSON (repeatable)")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed fractional regression in full mode "
                             f"(default: {DEFAULT_TOLERANCE})")
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--smoke", dest="smoke", action="store_true",
                      default=None,
                      help="force smoke mode (absolute floors)")
    mode.add_argument("--full", dest="smoke", action="store_false",
                      help="force full mode (baseline ratios)")
    args = parser.parse_args(argv)

    baselines = {path.name: path for path in args.baseline}
    failures = 0
    for fresh_path in args.fresh:
        baseline_path = baselines.get(fresh_path.name)
        if baseline_path is None:
            print(f"error: no --baseline given for {fresh_path.name}")
            failures += 1
            continue
        problems, notes, smoke = check_file(baseline_path, fresh_path,
                                            smoke=args.smoke,
                                            tolerance=args.tolerance)
        print(f"== {fresh_path.name} ({'smoke' if smoke else 'full'} gate) ==")
        for note in notes:
            print(f"  ok   {note}")
        for problem in problems:
            print(f"  FAIL {problem}")
        failures += len(problems)
    if failures:
        print(f"{failures} benchmark gate failure(s)")
        return 1
    print("benchmark gates clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
