#!/usr/bin/env python3
"""Importer coverage gate run by CI (and by ``tests/tools``).

Audits the ONNX bridge table against the conformance suite and fails if
the frontend quietly loses coverage::

    PYTHONPATH=src python tools/check_import_coverage.py --markdown

Checks enforced by :func:`check`:

* the default-domain bridge table keeps at least ``--min-ops`` operators
  (the PR-9 acceptance floor is 30);
* every bridged default-domain op has a case in
  ``repro.frontend.conformance`` — a bridge without a test is a silent
  gap, and a case for an unbridged op is a stale entry;
* every conformance case actually imports with **zero fallbacks** — a
  bridge that regresses into the Custom fallback path fails here even
  though the import itself "succeeds".

``--markdown`` prints the per-op coverage table (op, domain, summary,
conformance status) for the CI job summary; ``--output`` writes it to a
file (pointed at ``$GITHUB_STEP_SUMMARY`` in the workflow).

Exit code 0 when clean, 1 with a per-problem report otherwise.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.frontend import import_model  # noqa: E402
from repro.frontend.conformance import CONFORMANCE_CASES  # noqa: E402
from repro.frontend.ops_bridge import BRIDGE, REPRO_DOMAIN  # noqa: E402

#: The acceptance floor: bridged default-domain (standard ONNX) operators.
MIN_DEFAULT_OPS = 30


def collect() -> List[Dict[str, object]]:
    """One row per bridge: domain, op, summary, and conformance status."""
    rows: List[Dict[str, object]] = []
    for (domain, op), bridge in sorted(BRIDGE.items()):
        row: Dict[str, object] = {
            "op": op,
            "domain": domain or "(default)",
            "summary": bridge.summary,
            "case": domain == "" and op in CONFORMANCE_CASES,
            "fallbacks": None,
        }
        if row["case"]:
            try:
                _, report = import_model(CONFORMANCE_CASES[op]())
                row["fallbacks"] = report.num_fallbacks
            except Exception as exc:  # noqa: BLE001 - reported, not raised
                row["fallbacks"] = f"import error: {exc}"
        rows.append(row)
    return rows


def check(rows: Optional[List[Dict[str, object]]] = None,
          min_ops: int = MIN_DEFAULT_OPS) -> List[str]:
    """Return a list of problems (empty when coverage is healthy)."""
    rows = collect() if rows is None else rows
    problems: List[str] = []

    default_ops = {r["op"] for r in rows if r["domain"] == "(default)"}
    if len(default_ops) < min_ops:
        problems.append(
            f"only {len(default_ops)} default-domain ops bridged "
            f"(floor is {min_ops})")

    for row in rows:
        if row["domain"] != "(default)":
            continue
        if not row["case"]:
            problems.append(
                f"bridged op {row['op']} has no conformance case")
        elif row["fallbacks"] != 0:
            problems.append(
                f"conformance case for {row['op']} does not import cleanly: "
                f"{row['fallbacks']}")

    stale = set(CONFORMANCE_CASES) - default_ops
    for op in sorted(stale):
        problems.append(
            f"conformance case {op} covers an op that is no longer bridged")
    return problems


def markdown_table(rows: Optional[List[Dict[str, object]]] = None) -> str:
    """The per-op coverage table as GitHub-flavoured markdown."""
    rows = collect() if rows is None else rows
    default_rows = [r for r in rows if r["domain"] == "(default)"]
    repro_rows = [r for r in rows if r["domain"] != "(default)"]

    def status(row: Dict[str, object]) -> str:
        if not row["case"]:
            return ":x: no case" if row["domain"] == "(default)" else "n/a"
        return (":white_check_mark:" if row["fallbacks"] == 0
                else f":x: {row['fallbacks']}")

    lines = [
        "## ONNX importer coverage",
        "",
        f"{len(default_rows)} standard ONNX ops bridged "
        f"(floor: {MIN_DEFAULT_OPS}), "
        f"{len(repro_rows)} `{REPRO_DOMAIN}` round-trip ops.",
        "",
        "| Op | Domain | Conformance | Bridge behaviour |",
        "|---|---|---|---|",
    ]
    for row in default_rows + repro_rows:
        lines.append(f"| `{row['op']}` | {row['domain']} | {status(row)} "
                     f"| {row['summary']} |")
    return "\n".join(lines) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--min-ops", type=int, default=MIN_DEFAULT_OPS,
                        help="minimum bridged default-domain op count "
                             f"(default: {MIN_DEFAULT_OPS})")
    parser.add_argument("--markdown", action="store_true",
                        help="print the coverage table as markdown")
    parser.add_argument("--output", type=Path, default=None, metavar="PATH",
                        help="also write the markdown table to PATH "
                             "(e.g. $GITHUB_STEP_SUMMARY)")
    args = parser.parse_args(argv)

    rows = collect()
    table = markdown_table(rows)
    if args.markdown:
        print(table)
    if args.output is not None:
        with open(args.output, "a", encoding="utf-8") as fh:
            fh.write(table)

    problems = check(rows, min_ops=args.min_ops)
    if problems:
        print("importer coverage gate FAILED:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    default_count = sum(1 for r in rows if r["domain"] == "(default)")
    print(f"importer coverage OK: {default_count} default-domain ops, "
          f"all conformance cases import cleanly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
