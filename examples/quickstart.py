"""Quickstart: optimise a small BERT computation graph with X-RLflow.

Run with::

    python examples/quickstart.py
"""

from repro import XRLflow, XRLflowConfig, build_model
from repro.cost import CostModel, E2ESimulator


def main() -> None:
    # 1. Build the computation graph of the model to optimise.  Any model in
    #    the zoo works; sizes are reduced here so the example runs in seconds.
    graph = build_model("bert", num_layers=2, seq_len=64, hidden=256, num_heads=4)
    print(f"Built {graph.name}: {graph.num_nodes} nodes, {graph.num_edges} edges")

    # 2. Inspect the two latency signals the paper contrasts.
    cost_model = CostModel()
    e2e = E2ESimulator()
    print(f"Cost-model estimate : {cost_model.estimate(graph):.3f} ms")
    print(f"End-to-end latency  : {e2e.latency_ms(graph):.3f} ms")

    # 3. Train the RL agent and optimise.  XRLflowConfig() uses the paper's
    #    Table 4 hyper-parameters; .fast() is a small budget for quick runs.
    optimiser = XRLflow(XRLflowConfig.fast(num_episodes=10, max_steps=25))
    result = optimiser.optimise(graph, model_name="bert")

    # 4. Report.
    print(result.summary())
    print("Substitutions applied:")
    for rule, count in sorted(result.rule_counts().items()):
        print(f"  {rule:28s} x{count}")


if __name__ == "__main__":
    main()
