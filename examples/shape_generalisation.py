"""Shape generalisation (the paper's Figure 7): train once, reuse the agent.

A single X-RLflow agent is trained on DALL-E at one text length and then
optimises — inference only, no retraining — the same architecture at other
input lengths::

    python examples/shape_generalisation.py
"""

from repro.core import ShapeVariant, evaluate_generalisation
from repro.experiments import benchmark_config, small_model_kwargs
from repro.models import build_model


def main() -> None:
    base = small_model_kwargs("dalle")
    variants = [
        ShapeVariant("dalle-text32", dict(base, text_len=32), is_training_shape=True),
        ShapeVariant("dalle-text48", dict(base, text_len=48)),
        ShapeVariant("dalle-text64", dict(base, text_len=64)),
        ShapeVariant("dalle-image128", dict(base, image_tokens=128)),
    ]
    report = evaluate_generalisation(
        lambda **kw: build_model("dalle", **kw),
        variants,
        config=benchmark_config(),
        model_name="dalle",
    )
    print(report.summary())
    for label, result in zip(report.labels, report.results):
        print(f"  {label:18s} speedup {result.speedup_percent:+6.2f}%  "
              f"({len(result.applied_rules)} substitutions)")


if __name__ == "__main__":
    main()
