"""Compare X-RLflow against the TASO, Tensat and random-search baselines.

This mirrors the paper's Figure 4 / Figure 8 workflow on a single model, but
routes every contender through the optimisation service: the four searches
run concurrently on the worker pool, and re-running the script against a
persistent cache directory returns instantly from the fingerprint cache::

    python examples/compare_optimisers.py [model_name]
"""

import sys

from repro import build_model
from repro.experiments import small_model_kwargs
from repro.service import OptimisationService


def main(model_name: str = "squeezenet") -> None:
    graph = build_model(model_name, **small_model_kwargs(model_name))
    print(f"Optimising {model_name}: {graph.num_nodes} nodes")

    # Optimiser name -> config overrides, dispatched through the registry.
    contenders = {
        "taso": {"max_iterations": 40},
        "tensat": {"round_limit": 4},
        "random": {"num_walks": 3, "horizon": 20},
        "xrlflow": {},
    }

    with OptimisationService(num_workers=len(contenders)) as service:
        job_ids = {
            name: service.submit(graph, optimiser=name, config=config,
                                 model_name=model_name)
            for name, config in contenders.items()
        }
        results = {name: service.result(job_id)
                   for name, job_id in job_ids.items()}

        for name, result in results.items():
            print(result.search.summary())

        print("\nEnd-to-end speedup over the unoptimised graph:")
        ranked = sorted(results.items(), key=lambda kv: -kv[1].search.speedup)
        for name, result in ranked:
            origin = " [cache]" if result.cache_hit else ""
            print(f"  {name:8s} {result.search.speedup_percent:+7.2f}%  "
                  f"({result.search.optimisation_time_s:.2f}s optimisation "
                  f"time){origin}")
        print(f"\nservice stats: {service.stats()['jobs']}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "squeezenet")
