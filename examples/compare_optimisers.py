"""Compare X-RLflow against the TASO, Tensat and random-search baselines.

This mirrors the paper's Figure 4 / Figure 8 workflow on a single model::

    python examples/compare_optimisers.py [model_name]
"""

import sys

from repro import XRLflow, build_model
from repro.cost import E2ESimulator
from repro.experiments import benchmark_config, small_model_kwargs
from repro.search import RandomSearchOptimizer, TASOOptimizer, TensatOptimizer


def main(model_name: str = "squeezenet") -> None:
    graph = build_model(model_name, **small_model_kwargs(model_name))
    print(f"Optimising {model_name}: {graph.num_nodes} nodes")

    # All optimisers report against the same end-to-end latency simulator.
    e2e = E2ESimulator()
    contenders = {
        "taso": TASOOptimizer(max_iterations=40, e2e=e2e),
        "tensat": TensatOptimizer(round_limit=4, e2e=e2e),
        "random": RandomSearchOptimizer(num_walks=3, horizon=20, e2e=e2e),
        "xrlflow": XRLflow(benchmark_config(), e2e=e2e),
    }

    results = {}
    for name, optimiser in contenders.items():
        results[name] = optimiser.optimise(graph, model_name)
        print(results[name].summary())

    print("\nEnd-to-end speedup over the unoptimised graph:")
    for name, result in sorted(results.items(), key=lambda kv: -kv[1].speedup):
        print(f"  {name:8s} {result.speedup_percent:+7.2f}%  "
              f"({result.optimisation_time_s:.2f}s optimisation time)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "squeezenet")
