"""Optimise a model with TASO-style search and export the optimised graph.

Demonstrates the ONNX-like JSON round trip the paper describes (import a
model, superoptimise, export for deployment)::

    python examples/export_optimised_graph.py /tmp/squeezenet_optimised.json
"""

import sys

from repro.cost import E2ESimulator
from repro.ir import load_graph, save_graph
from repro.models import build_model
from repro.search import TASOOptimizer


def main(output_path: str = "/tmp/squeezenet_optimised.json") -> None:
    graph = build_model("squeezenet")
    result = TASOOptimizer(max_iterations=60).optimise(graph, "squeezenet")
    print(result.summary())

    save_graph(result.final_graph, output_path)
    print(f"Optimised graph written to {output_path}")

    # Round-trip check: the reloaded graph has identical structure and latency.
    reloaded = load_graph(output_path)
    e2e = E2ESimulator()
    assert reloaded.structural_hash() == result.final_graph.structural_hash()
    print(f"Reloaded graph latency: {e2e.latency_ms(reloaded):.3f} ms "
          f"(matches optimised graph)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "/tmp/squeezenet_optimised.json")
