"""Benchmarks for the fast RL stack (X-RLflow agent + environment).

Three measurements on the largest model-zoo graphs (InceptionV3 is the
largest convolutional entry, BERT the largest transformer entry), each
comparing the fast path against a faithful reimplementation of the seed
repo's RL loop (``SeedAgent`` below: per-candidate Python loops building the
pair matrix, the O(A²) ``list.index`` logit-padding loop, ``np.add.at``
segment kernels via :func:`reference_kernels`, tape-building rollouts,
float64 everywhere, from-scratch observation encoding):

* **observation encoding** — graphs/sec encoding a current graph plus all
  of its rewrite candidates.  The fast path patches each candidate's arrays
  from the parent's cached per-node blocks (`GraphDelta`-driven
  invalidation) instead of re-walking every node and edge in Python.
* **env steps** — end-to-end steps/sec over an ``optimise()``-shaped
  workload: a window of stochastic training rollouts followed by repeated
  deterministic evaluation episodes.  The fast path runs the training
  default (float32 agent, ``no_grad`` rollouts, observation + decision
  caches); a float64 fast run is also timed and must retrace the eager
  trajectory *exactly*.
* **PPO update** — ``PPOUpdater.update`` wall-clock on a realistic
  10-episode buffer: chunked batched forward (float32 training default)
  vs the seed per-transition loop.

Results are recorded to ``BENCH_rl.json`` at the repo root so the perf
trajectory is gated over time (see ``tools/check_bench.py``).

Set ``RL_BENCH_SMOKE=1`` (CI) for reduced budgets with relaxed speedup
floors — CI boxes are too noisy for the full gates, which are asserted in
the default (full) mode.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.experiments import ExperimentReport, build_small_model
from repro.nn import reference_kernels
from repro.nn.tensor import Tensor, concat, flat_ids_cache_stats, stack
from repro.rl import (GraphRewriteEnv, RolloutBuffer, Transition,
                      PPOUpdater, XRLflowAgent, encode_graph)
from repro.rules import default_ruleset

SMOKE = os.environ.get("RL_BENCH_SMOKE") == "1"
REPEATS = 1 if SMOKE else 5
TRAIN_EPISODES = 2 if SMOKE else 6
EVAL_EPISODES = 2 if SMOKE else 4
BUFFER_EPISODES = 3 if SMOKE else 10
PPO_EPOCHS = 1 if SMOKE else 2
#: Full-mode acceptance floors, set with margin under the measured numbers
#: (encode 3.2-3.7x, env steps 3.6-4.2x, PPO update 2.1-2.3x on the
#: reference box — see BENCH_rl.json); smoke floors live in
#: tools/check_bench.py.
MIN_ENCODE_SPEEDUP = 1.2 if SMOKE else 2.5
MIN_ENV_SPEEDUP = 1.1 if SMOKE else 2.0
MIN_PPO_SPEEDUP = 1.1 if SMOKE else 1.5
#: Largest zoo graphs by node count: convolutional and transformer family.
LARGEST_MODELS = ["inception_v3", "bert"]

AGENT_KW = dict(hidden_dim=32, embedding_dim=32, num_gat_layers=3,
                head_sizes=(64, 32), seed=0)
ENV_KW = dict(max_candidates=24, max_steps=10, seed=0)

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_rl.json"

_MASK_VALUE = -1e9


class SeedAgent(XRLflowAgent):
    """The seed repo's ``forward``, reimplemented line-for-line.

    Per-candidate Python loop assembling the pair matrix, then the O(A²)
    ``list.index`` padding loop rebuilding the masked logit vector out of
    1-element tensors.  Numerically identical to the vectorised forward —
    kept here as the benchmark baseline.
    """

    def forward(self, observation):
        embeddings = self.encoder(observation.meta_graph)  # [1 + C, D]
        num_graphs = observation.meta_graph.num_graphs
        current = embeddings[0:1]
        num_candidates = num_graphs - 1

        rows = []
        current_b = current.reshape(self.embedding_dim)
        if num_candidates > 0:
            candidate_emb = embeddings[1:num_graphs]
            for i in range(num_candidates):
                rows.append(concat([current_b, candidate_emb[i]], axis=0))
        rows.append(concat([current_b, current_b], axis=0))
        pair_matrix = stack(rows, axis=0)
        logits = self.policy_head(pair_matrix).reshape(len(rows))

        mask = observation.action_mask
        logits_np_positions = list(range(num_candidates)) + [mask.shape[0] - 1]
        pad_rows = []
        for position in range(mask.shape[0]):
            if position in logits_np_positions:
                idx = logits_np_positions.index(position)
                pad_rows.append(logits[idx:idx + 1])
            else:
                pad_rows.append(Tensor(np.array([_MASK_VALUE])))
        masked_logits = concat(pad_rows, axis=0)
        invalid = ~mask
        if invalid.any():
            masked_logits = masked_logits + Tensor(
                np.where(invalid, _MASK_VALUE, 0.0))

        if num_candidates > 0:
            mean_candidate = embeddings[1:num_graphs].mean(axis=0)
        else:
            mean_candidate = current_b
        value_input = concat([current_b, mean_candidate], axis=0).reshape(1, -1)
        value = self.value_head(value_input).reshape(1)
        return masked_logits, value


def _record(section: str, payload: dict) -> None:
    """Merge one benchmark section into the repo's BENCH_rl.json."""
    data = {"benchmark": "rl", "schema": 1, "results": {}}
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except (ValueError, OSError):
            pass
    data.setdefault("results", {})[section] = payload
    data["smoke"] = SMOKE
    BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _best_of(fn, repeats=REPEATS):
    """Minimum wall-clock over ``repeats`` runs (robust to scheduler noise).

    Returns the *best repeat's* result so any measurements riding along
    with it (e.g. the per-stage timings) describe the same run as the
    reported wall-clock — a noisy repeat must not be able to poison the
    recorded stage breakdown while the headline uses the quiet one.
    """
    best_s, best_result = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        if elapsed < best_s:
            best_s, best_result = elapsed, result
    return best_s, best_result


def _assert_features_equal(fast, ref):
    for field in ("node_features", "edge_features", "edge_src", "edge_dst"):
        assert np.array_equal(getattr(fast, field), getattr(ref, field)), field


# ---------------------------------------------------------------------------
# 1. Observation encoding
# ---------------------------------------------------------------------------

def test_observation_encoding_throughput(benchmark):
    """Delta-patched vectorised encoding vs the seed per-edge Python loop."""
    report = ExperimentReport(
        experiment="RL bench",
        description="current graph + all candidates encode throughput (graphs/s)")
    payload = {}

    def run():
        rows = []
        for name in LARGEST_MODELS:
            graph = build_small_model(name)
            ruleset = default_ruleset()

            def fresh_candidates():
                return [c.graph for c in ruleset.all_candidates(graph)]

            def eager_pass():
                graphs = [graph] + fresh_candidates()
                started = time.perf_counter()
                feats = [encode_graph(g, incremental=False) for g in graphs]
                return time.perf_counter() - started, feats, graphs

            def fast_pass():
                # Candidates materialised outside the timer: the measurement
                # is encoding alone.  Parent blocks are warm (the environment
                # always encodes the current graph first), candidates are
                # fresh objects patched from the parent's cached rows.
                encode_graph(graph)
                graphs = [graph] + fresh_candidates()
                started = time.perf_counter()
                feats = [encode_graph(g) for g in graphs]
                return time.perf_counter() - started, feats, graphs

            eager_s = fast_s = float("inf")
            for _ in range(REPEATS):
                e_s, eager_feats, _ = eager_pass()
                f_s, fast_feats, _ = fast_pass()
                eager_s, fast_s = min(eager_s, e_s), min(fast_s, f_s)
                # Equivalence gate: arrays bit-for-bit identical.
                for fast_f, ref_f in zip(fast_feats, eager_feats):
                    _assert_features_equal(fast_f, ref_f)
            rows.append((name, len(eager_feats), eager_s, fast_s))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, count, eager_s, fast_s in rows:
        speedup = eager_s / fast_s
        report.add(name, graphs=float(count),
                   eager_graphs_per_s=count / eager_s,
                   fast_graphs_per_s=count / fast_s,
                   speedup_x=speedup)
        payload[name] = {
            "graphs": count,
            "eager_graphs_per_sec": count / eager_s,
            "fast_graphs_per_sec": count / fast_s,
            "speedup": speedup,
        }
    print("\n" + report.to_text())
    _record("observation_encoding", payload)
    for name, count, eager_s, fast_s in rows:
        assert eager_s / fast_s >= MIN_ENCODE_SPEEDUP, \
            (f"{name}: incremental encoding only {eager_s / fast_s:.2f}x "
             f"faster (gate {MIN_ENCODE_SPEEDUP}x)")


# ---------------------------------------------------------------------------
# 2. Environment steps (optimise()-shaped workload)
# ---------------------------------------------------------------------------

def _trace_matching(env, stages):
    """Route the env's rule-matching through a wall-clock accumulator."""
    target = env._candidate_engine if env._candidate_engine is not None \
        else env.ruleset
    inner = target.lazy_candidates

    def timed(graph):
        started = time.perf_counter()
        result = inner(graph)
        stages["match_s"] += time.perf_counter() - started
        return result

    target.lazy_candidates = timed


def _run_workload(env, agent, grad, stages=None):
    """Stochastic training window + repeated deterministic evaluation.

    ``stages`` (optional dict) accumulates per-stage wall-clock: ``act_s``
    (policy forward — the delta GNN embed on the fast path, the full
    meta-graph forward on the eager path), ``step_s`` (env transition:
    candidate maintenance, materialisation, reward) and ``match_s`` (rule
    matching inside ``step_s``, via :func:`_trace_matching`).
    """
    if stages is not None:
        _trace_matching(env, stages)
    actions = []

    def _episode(deterministic):
        obs = env.reset()
        done = False
        while not done:
            started = time.perf_counter()
            decision = agent.act(obs, deterministic=deterministic, grad=grad)
            acted = time.perf_counter()
            step = env.step(decision.action)
            if stages is not None:
                stages["act_s"] += acted - started
                stages["step_s"] += time.perf_counter() - acted
            actions.append(decision.action)
            obs, done = step.observation, step.done

    for _ in range(TRAIN_EPISODES):
        _episode(False)
    for _ in range(EVAL_EPISODES):
        _episode(True)
    return actions


def test_env_steps_throughput(benchmark):
    """Fast RL loop (float32 + caches + no_grad) vs the seed loop."""
    report = ExperimentReport(
        experiment="RL bench",
        description="env steps/sec, training + evaluation workload")
    payload = {}

    def run():
        rows = []
        for name in LARGEST_MODELS:
            graph = build_small_model(name)

            # Untimed warm-up episode: first-touch costs (BLAS code paths,
            # latency profiles memoised on the shared graph objects) must
            # not bias whichever variant happens to run first.
            warm_env = GraphRewriteEnv(graph, **ENV_KW)
            warm_agent = XRLflowAgent(**AGENT_KW)
            obs = warm_env.reset()
            done = False
            while not done:
                step = warm_env.step(warm_agent.act(obs).action)
                obs, done = step.observation, step.done

            def fast_run():
                stages = {"act_s": 0.0, "step_s": 0.0, "match_s": 0.0}
                env = GraphRewriteEnv(graph, **ENV_KW)
                agent = XRLflowAgent(**AGENT_KW, dtype=np.float32)
                actions = _run_workload(env, agent, grad=False,
                                        stages=stages)
                return actions, env, agent, stages

            def fast64_run():
                env = GraphRewriteEnv(graph, **ENV_KW)
                agent = XRLflowAgent(**AGENT_KW)
                actions = _run_workload(env, agent, grad=False)
                return actions, env

            def eager_run():
                stages = {"act_s": 0.0, "step_s": 0.0, "match_s": 0.0}
                env = GraphRewriteEnv(graph, **ENV_KW, incremental=False)
                agent = SeedAgent(**AGENT_KW)
                with reference_kernels():
                    actions = _run_workload(env, agent, grad=True,
                                            stages=stages)
                return actions, env, stages

            fast_s, (fast_actions, fast_env, fast_agent, fast_stages) = \
                _best_of(fast_run)
            fast64_s, (fast64_actions, _) = _best_of(fast64_run)
            eager_s, (eager_actions, _, eager_stages) = _best_of(eager_run)
            # Equivalence gate #1: in float64 the fast path must retrace
            # the seed trajectory action-for-action.
            assert fast64_actions == eager_actions, name

            # Equivalence gate #2: one verified (untimed) episode — the
            # delta GNN forward is checked bit-for-bit against the full
            # encoder on every policy evaluation.  The recorded check
            # count lets tools/check_bench.py refuse a run that skipped
            # the gate.
            verify_env = GraphRewriteEnv(graph, **ENV_KW)
            verify_agent = XRLflowAgent(**AGENT_KW)
            verify_agent.embedder.verify = True
            obs = verify_env.reset()
            done = False
            while not done:
                step = verify_env.step(verify_agent.act(obs).action)
                obs, done = step.observation, step.done
            embed_checks = verify_agent.embedder.equivalence_checks
            assert embed_checks > 0, \
                f"{name}: embedder equivalence gate never exercised"

            steps = len(eager_actions)
            stats = fast_env.encode_cache_stats()
            stats.update(fast_env._candidate_engine.stats())
            stats.update(fast_agent.embedder.stats())
            stats.update(fast_agent._decision_cache.stats())
            stats.update(flat_ids_cache_stats())
            rows.append((name, steps, fast_s, fast64_s, eager_s, stats,
                         fast_stages, eager_stages, embed_checks))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for (name, steps, fast_s, fast64_s, eager_s, stats, fast_stages,
         eager_stages, embed_checks) in rows:
        speedup = eager_s / fast_s
        report.add(name, steps=float(steps),
                   fast_steps_per_s=steps / fast_s,
                   eager_steps_per_s=steps / eager_s,
                   speedup_x=speedup,
                   act_speedup_x=eager_stages["act_s"] / fast_stages["act_s"],
                   obs_cache_hit=stats["observation_hit_rate"])
        payload[name] = {
            "steps": steps,
            "fast_steps_per_sec": steps / fast_s,
            "fast_float64_steps_per_sec": steps / fast64_s,
            "eager_steps_per_sec": steps / eager_s,
            "speedup": speedup,
            "speedup_float64": eager_s / fast64_s,
            "observation_cache_hit_rate": stats["observation_hit_rate"],
            "encode_cache_hit_rate": stats["hit_rate"],
            # Per-stage wall-clock (best repeat) and fast-vs-eager stage
            # speedups: act = policy forward (delta GNN embed vs full
            # meta-graph forward), step = env transition, match = rule
            # matching inside step (incremental engine vs full scans).
            "stages": {
                "fast": fast_stages,
                "eager": eager_stages,
                "act_speedup":
                    eager_stages["act_s"] / fast_stages["act_s"],
                "step_speedup":
                    eager_stages["step_s"] / fast_stages["step_s"],
                "match_speedup":
                    eager_stages["match_s"] / fast_stages["match_s"],
            },
            # Unified-LRU counters (repro.core.lru) for every hot-path
            # cache touched by the fast run.
            "lru": stats,
            "equivalence": {
                "trajectory_float64": "passed",
                "embedder_checks": float(embed_checks),
            },
        }
    print("\n" + report.to_text())
    _record("env_steps", payload)
    for (name, steps, fast_s, fast64_s, eager_s, stats, fast_stages,
         eager_stages, embed_checks) in rows:
        assert eager_s / fast_s >= MIN_ENV_SPEEDUP, \
            (f"{name}: fast env loop only {eager_s / fast_s:.2f}x faster "
             f"(gate {MIN_ENV_SPEEDUP}x)")


# ---------------------------------------------------------------------------
# 3. PPO update
# ---------------------------------------------------------------------------

def _collect_buffer(graph):
    """A realistic rollout window: BUFFER_EPISODES episodes, fixed weights."""
    env = GraphRewriteEnv(graph, **ENV_KW)
    agent = XRLflowAgent(**AGENT_KW)
    buffer = RolloutBuffer()
    for _ in range(BUFFER_EPISODES):
        obs = env.reset()
        done = False
        while not done:
            decision = agent.act(obs)
            step = env.step(decision.action)
            buffer.add(Transition(obs, decision.action, decision.log_prob,
                                  decision.value, step.reward, step.done))
            obs, done = step.observation, step.done
    return buffer


def test_ppo_update_speedup(benchmark):
    """Chunked batched PPO update (float32) vs the seed per-transition loop."""
    report = ExperimentReport(
        experiment="RL bench",
        description="PPOUpdater.update wall-clock, batched vs seed loop")
    payload = {}

    def run():
        rows = []
        for name in LARGEST_MODELS:
            graph = build_small_model(name)
            buffer = _collect_buffer(graph)

            def batched_update():
                agent = XRLflowAgent(**AGENT_KW, dtype=np.float32)
                updater = PPOUpdater(agent, epochs=PPO_EPOCHS, batch_size=16,
                                     batched=True, seed=0)
                return updater.update(buffer)

            def batched64_update():
                agent = XRLflowAgent(**AGENT_KW)
                updater = PPOUpdater(agent, epochs=PPO_EPOCHS, batch_size=16,
                                     batched=True, seed=0)
                return updater.update(buffer)

            def loop_update():
                agent = SeedAgent(**AGENT_KW)
                updater = PPOUpdater(agent, epochs=PPO_EPOCHS, batch_size=16,
                                     batched=False, seed=0)
                with reference_kernels():
                    return updater.update(buffer)

            batched64_update()  # untimed warm-up (BLAS paths, encodings)
            batched_s, batched_stats = _best_of(batched_update)
            batched64_s, batched64_stats = _best_of(batched64_update)
            loop_s, loop_stats = _best_of(loop_update)
            # Equivalence gate: in float64 the batched update reproduces the
            # seed loop's statistics (per-transition outputs are bit-equal;
            # the minibatch mean reduction rounds differently, hence approx).
            assert np.isclose(batched64_stats.policy_loss,
                              loop_stats.policy_loss,
                              rtol=1e-6, atol=1e-9), name
            assert np.isclose(batched64_stats.value_loss,
                              loop_stats.value_loss,
                              rtol=1e-6, atol=1e-9), name
            rows.append((name, len(buffer), batched_s, batched64_s, loop_s))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, transitions, batched_s, batched64_s, loop_s in rows:
        speedup = loop_s / batched_s
        report.add(name, transitions=float(transitions),
                   batched_s=batched_s, loop_s=loop_s, speedup_x=speedup)
        payload[name] = {
            "transitions": transitions,
            "epochs": PPO_EPOCHS,
            "batched_seconds": batched_s,
            "batched_float64_seconds": batched64_s,
            "loop_seconds": loop_s,
            "speedup": speedup,
            "speedup_float64": loop_s / batched64_s,
        }
    print("\n" + report.to_text())
    _record("ppo_update", payload)
    for name, transitions, batched_s, batched64_s, loop_s in rows:
        assert loop_s / batched_s >= MIN_PPO_SPEEDUP, \
            (f"{name}: batched PPO update only {loop_s / batched_s:.2f}x "
             f"faster (gate {MIN_PPO_SPEEDUP}x)")
