"""Benchmarks for the incremental rewrite engine.

Four measurements on the largest model-zoo graphs (InceptionV3 is the
largest convolutional entry, BERT the largest transformer entry):

* **candidate throughput** — how many rewrite candidates per second the
  engine can enumerate, materialise and rank.  The eager baseline is the
  seed path (``RuleSet.all_candidates`` + full ``CostModel.estimate`` per
  candidate); the incremental path is lazy candidates + delta costing.
* **end-to-end TASO search** — ``TASOOptimizer.optimise`` wall-clock,
  eager vs incremental.
* **intra-search parallelism** — the same search sharded across the
  persistent worker pool, with a per-stage overhead breakdown
  (serialise / dispatch / compute) and the host core count recorded so
  the CI gate knows whether a scaling floor is even physical.
* **measured end-to-end** — the TASO-optimised graphs executed for real
  with the numpy backend: the cost-model win must survive contact with
  actual kernels.

Every variant must produce *identical* results (costs bit-for-bit, graph
hashes byte-for-byte); the speedup assertions make regressions in the lazy
path fail loudly.  Results are appended to ``BENCH_search.json`` at the
repo root so the perf trajectory is recorded over time.

Set ``SEARCH_BENCH_SMOKE=1`` (CI) for a single repetition with relaxed
speedup thresholds — CI boxes are too noisy for the full 3x/2x gates, which
are asserted in the default (full) mode.
"""

import json
import os
import time
from pathlib import Path

from repro.cost import CostModel
from repro.exec import NumpyExecutor
from repro.experiments import ExperimentReport, build_small_model
from repro.rules import default_ruleset
from repro.search import TASOOptimizer, WorkerPool
from repro.service.profiling import StageProfiler

SMOKE = os.environ.get("SEARCH_BENCH_SMOKE") == "1"
REPEATS = 1 if SMOKE else 3
TASO_ITERATIONS = 8 if SMOKE else 30
#: Acceptance gates: >=3x candidate throughput, >=2x TASO end-to-end.
MIN_CANDIDATE_SPEEDUP = 1.1 if SMOKE else 3.0
MIN_E2E_SPEEDUP = 1.1 if SMOKE else 2.0
#: Largest zoo graphs by node count: convolutional and transformer family.
LARGEST_MODELS = ["inception_v3", "bert"]

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_search.json"


def _record(section: str, payload: dict) -> None:
    """Merge one benchmark section into the repo's BENCH_search.json."""
    data = {"benchmark": "search", "schema": 1, "results": {}}
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except (ValueError, OSError):
            pass
    data.setdefault("results", {})[section] = payload
    data["smoke"] = SMOKE
    BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _best_of(fn, repeats=REPEATS):
    """Minimum wall-clock over ``repeats`` runs (robust to scheduler noise)."""
    best_s, result = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best_s = min(best_s, time.perf_counter() - started)
    return best_s, result


def test_candidate_generation_throughput(benchmark):
    """Lazy + delta-cost candidate ranking is >=3x the eager seed path."""
    report = ExperimentReport(
        experiment="Search bench",
        description="candidate enumeration + ranking throughput (cand/s)")
    payload = {}

    def run():
        rows = []
        for name in LARGEST_MODELS:
            graph = build_small_model(name)
            ruleset = default_ruleset()

            def eager_pass():
                pure = CostModel()
                candidates = ruleset.all_candidates(graph)
                return [pure.estimate(c.graph) for c in candidates]

            incremental_cm = CostModel()
            parent_cost = incremental_cm.estimate_cached(graph)

            def lazy_pass():
                costs = []
                for candidate in ruleset.lazy_candidates(graph):
                    child = candidate.materialise()
                    if child is None:
                        continue
                    costs.append(incremental_cm.estimate_delta(
                        graph, child, parent_cost=parent_cost))
                return costs

            eager_s, eager_costs = _best_of(eager_pass)
            lazy_s, lazy_costs = _best_of(lazy_pass)
            # Equivalence gate: identical candidates, bit-identical costs.
            assert lazy_costs == eager_costs, name
            rows.append((name, len(eager_costs), eager_s, lazy_s))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, count, eager_s, lazy_s in rows:
        speedup = eager_s / lazy_s
        report.add(name, candidates=float(count),
                   eager_cand_per_s=count / eager_s,
                   lazy_cand_per_s=count / lazy_s,
                   speedup_x=speedup)
        payload[name] = {
            "candidates": count,
            "eager_candidates_per_sec": count / eager_s,
            "lazy_candidates_per_sec": count / lazy_s,
            "speedup": speedup,
        }
    print("\n" + report.to_text())
    _record("candidate_throughput", payload)
    for name, count, eager_s, lazy_s in rows:
        assert eager_s / lazy_s >= MIN_CANDIDATE_SPEEDUP, \
            (f"{name}: lazy candidate path only {eager_s / lazy_s:.2f}x "
             f"faster (gate {MIN_CANDIDATE_SPEEDUP}x)")


def test_taso_end_to_end_speedup(benchmark):
    """Incremental TASO is >=2x eager wall-clock with identical results."""
    report = ExperimentReport(
        experiment="Search bench",
        description="TASOOptimizer.optimise wall-clock, eager vs incremental")
    payload = {}

    def run():
        rows = []
        for name in LARGEST_MODELS:
            graph = build_small_model(name)

            def eager_run():
                return TASOOptimizer(
                    max_iterations=TASO_ITERATIONS,
                    incremental=False).optimise(graph, name)

            def incremental_run():
                return TASOOptimizer(
                    max_iterations=TASO_ITERATIONS,
                    incremental=True).optimise(graph, name)

            eager_s, eager = _best_of(eager_run)
            incremental_s, incremental = _best_of(incremental_run)
            # Equivalence gate: the incremental engine must retrace the
            # eager search exactly.
            assert incremental.final_cost_ms == eager.final_cost_ms, name
            assert incremental.final_graph.structural_hash() \
                == eager.final_graph.structural_hash(), name
            assert incremental.applied_rules == eager.applied_rules, name
            assert incremental.stats == eager.stats, name
            rows.append((name, eager_s, incremental_s))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, eager_s, incremental_s in rows:
        speedup = eager_s / incremental_s
        report.add(name, eager_s=eager_s, incremental_s=incremental_s,
                   speedup_x=speedup)
        payload[name] = {
            "eager_seconds": eager_s,
            "incremental_seconds": incremental_s,
            "speedup": speedup,
            "iterations": TASO_ITERATIONS,
        }
    print("\n" + report.to_text())
    _record("taso_end_to_end", payload)
    for name, eager_s, incremental_s in rows:
        assert eager_s / incremental_s >= MIN_E2E_SPEEDUP, \
            (f"{name}: incremental TASO only "
             f"{eager_s / incremental_s:.2f}x faster (gate {MIN_E2E_SPEEDUP}x)")


def test_intra_search_parallel(benchmark):
    """Pooled candidate evaluation retraces the serial search exactly.

    The speedup is recorded together with ``cores`` — on a single-core CI
    box sharding CPU-bound work over processes cannot beat serial, so the
    CI gate (``tools/check_bench.py``) only enforces its scaling floor
    when the recording host actually had cores to scale onto.  The
    equivalence witnesses are enforced unconditionally.
    """
    report = ExperimentReport(
        experiment="Search bench",
        description="TASO serial vs worker-pool sharded (4 workers)")
    payload = {"cores": os.cpu_count() or 1}
    profiler = StageProfiler()

    def run():
        rows = []
        with WorkerPool(num_workers=4, profiler=profiler) as pool:
            for name in LARGEST_MODELS:
                graph = build_small_model(name)

                def serial_run():
                    return TASOOptimizer(
                        max_iterations=TASO_ITERATIONS).optimise(graph, name)

                def pooled_run():
                    return TASOOptimizer(
                        max_iterations=TASO_ITERATIONS,
                        pool=pool).optimise(graph, name)

                serial_s, serial = _best_of(serial_run)
                pooled_s, pooled = _best_of(pooled_run)
                # Equivalence gate: bit-for-bit, not approximate.
                assert pooled.final_cost_ms == serial.final_cost_ms, name
                assert pooled.final_graph.structural_hash() \
                    == serial.final_graph.structural_hash(), name
                assert pooled.applied_rules == serial.applied_rules, name
                assert pooled.stats["fallback_batches"] == 0, name
                rows.append((name, serial_s, pooled_s, pooled.stats))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    stages = profiler.snapshot()
    stage_total = sum(stages.values()) or 1.0
    for name, serial_s, pooled_s, stats in rows:
        speedup = serial_s / pooled_s
        report.add(name, serial_s=serial_s, parallel_s=pooled_s,
                   speedup_x=speedup)
        payload[name] = {
            "serial_seconds": serial_s,
            "parallel_seconds": pooled_s,
            "speedup": speedup,
            "workers": 4,
            "bytes_shipped": stats["bytes_shipped"],
            "equivalence": {
                "final_hash": "matched",
                "final_cost_float64": "matched",
                "rules_checked": len(LARGEST_MODELS),
            },
        }
    payload["stages"] = {
        name: {"seconds": seconds, "fraction": seconds / stage_total}
        for name, seconds in stages.items()}
    for name, seconds in sorted(stages.items()):
        report.add(f"stage:{name}", seconds=seconds,
                   fraction=seconds / stage_total)
    print("\n" + report.to_text())
    _record("intra_search_parallel", payload)
    # Core-aware floor, mirrored by the CI gate: with real cores the pool
    # must win outright; on a single-core host sharding CPU-bound work
    # over processes is pure timeslicing, so only pathological overhead
    # (e.g. re-shipping full graphs every iteration) fails.
    floor = 1.2 if (os.cpu_count() or 1) >= 2 else 0.15
    for name, serial_s, pooled_s, _ in rows:
        assert serial_s / pooled_s >= floor, \
            (f"{name}: pooled search {serial_s / pooled_s:.2f}x vs serial "
             f"(floor {floor}x on {os.cpu_count()} core(s))")


def test_measured_end_to_end(benchmark):
    """The cost-model win survives real execution: TASO-optimised graphs
    run faster under the numpy backend than their inputs."""
    report = ExperimentReport(
        experiment="Search bench",
        description="executed latency before vs after TASO optimisation")
    payload = {}
    executor = NumpyExecutor()

    def run():
        rows = []
        for name in LARGEST_MODELS:
            graph = build_small_model(name)
            result = TASOOptimizer(
                max_iterations=TASO_ITERATIONS).optimise(graph, name)
            baseline_ms = executor.measure(graph, repeats=REPEATS)
            optimised_ms = executor.measure(result.final_graph,
                                            repeats=REPEATS)
            rows.append((name, baseline_ms, optimised_ms,
                         len(result.applied_rules)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, baseline_ms, optimised_ms, rules in rows:
        speedup = baseline_ms / optimised_ms
        report.add(name, baseline_ms=baseline_ms, optimised_ms=optimised_ms,
                   speedup_x=speedup, rules=float(rules))
        payload[name] = {
            "baseline_execute_ms": baseline_ms,
            "optimised_execute_ms": optimised_ms,
            "speedup": speedup,
            "rules_applied": rules,
        }
    print("\n" + report.to_text())
    _record("measured_end_to_end", payload)
    for name, baseline_ms, optimised_ms, rules in rows:
        assert rules > 0, f"{name}: search applied no rewrites"
        # Executed wins are genuinely small on reduced-size graphs (the
        # fusions help, but numpy pays no kernel-launch overhead); the gate
        # is "never slower beyond timer noise".
        assert baseline_ms / optimised_ms >= 0.97, \
            (f"{name}: optimised graph executes slower "
             f"({baseline_ms:.2f}ms -> {optimised_ms:.2f}ms)")
