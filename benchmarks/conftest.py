"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and prints
the reproduced rows (run pytest with ``-s`` to see them inline).  RL-based
benchmarks run a reduced training budget; scale the configuration up via
``repro.experiments.benchmark_config`` overrides for a longer, closer run.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import benchmark_config, optimise_suite

# Benchmark gates compare against recorded baselines; a persisted device
# calibration preset would silently shift every simulated latency.
os.environ.setdefault("REPRO_DEVICE_PRESET", "off")


@pytest.fixture(scope="session")
def rl_config():
    """The X-RLflow configuration shared by all RL-driven benchmarks."""
    return benchmark_config()


@pytest.fixture(scope="session")
def suite_results(rl_config):
    """TASO + X-RLflow results on the full evaluation suite (Figures 4/5/6).

    Computed once per benchmark session and shared, since the three figures
    are different views of the same optimisation runs.
    """
    return optimise_suite(config=rl_config)
