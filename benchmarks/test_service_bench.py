"""Benchmarks for the optimisation service.

Seven measurements, all recorded to ``BENCH_service.json`` at the repo root:

* **cold vs warm** — re-submitting a known model returns from the in-memory
  fingerprint cache ≥10x faster;
* **parallel scaling** — one serial worker vs four service workers whose
  jobs also shard candidate evaluation across the intra-search process
  pool; bit-for-bit equivalence asserted, per-stage overhead breakdown and
  the host core count recorded (the CI scaling floor is core-aware: CI
  boxes may grant one core, where sharding CPU-bound work cannot win);
* **warm shared cache** — a *second service* pointed at the first one's
  cache directory serves the whole batch from disk without re-searching;
* **dedup under contention** — N identical concurrent submissions coalesce
  onto one search, vs N full searches with dedup opted out;
* **async / remote workers** — the same batch through the asyncio process
  pool and through a loopback JSON-RPC worker, equivalence asserted;
* **dispatch under skewed load** — one saturated worker box in a
  two-box fleet: health-aware routing vs the legacy round-robin baseline
  (no job failures either way, health routing faster);
* **cross-process dedup** — N service *processes* submitting the identical
  request against one shared cache directory run exactly one search,
  vs N private searches with the lease protocol disabled.

Set ``SERVICE_BENCH_SMOKE=1`` (CI) to shrink budgets and relax wall-clock
gates — correctness/equivalence assertions stay strict in both modes.
"""

import json
import multiprocessing
import os
import threading
import time
import uuid
from pathlib import Path

import pytest

from repro.experiments import ExperimentReport, build_small_model
from repro.search import TASOOptimizer, WorkerPool
from repro.search.result import SearchResult
from repro.service import (LeaseConfig, OptimisationService,
                           RemoteWorkerClient, WorkerServer,
                           register_optimiser)
from repro.service.profiling import StageProfiler
from repro.service.worker import JobRequest

SMOKE = os.environ.get("SERVICE_BENCH_SMOKE") == "1"
MODELS = ["squeezenet", "resnext50", "bert", "vit"]
TASO_CONFIG = {"max_iterations": 10 if SMOKE else 25}
#: Identical concurrent submissions in the dedup benchmark.
CONTENTION = 4 if SMOKE else 8

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_service.json"


def _record(section: str, payload: dict) -> None:
    """Merge one benchmark section into the repo's BENCH_service.json."""
    data = {"benchmark": "service", "schema": 1, "results": {}}
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except (ValueError, OSError):
            pass
    data.setdefault("results", {})[section] = payload
    data["smoke"] = SMOKE
    BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _graphs():
    return [(build_small_model(name), name) for name in MODELS]


def _run_batch(service, graphs, use_cache=True):
    started = time.perf_counter()
    results = service.optimise_batch(graphs, "taso", TASO_CONFIG,
                                     use_cache=use_cache)
    return results, time.perf_counter() - started


def test_service_cold_vs_warm_throughput(benchmark):
    """Re-submitting a known model returns from cache >= 10x faster."""
    graphs = _graphs()

    def run():
        with OptimisationService(num_workers=2) as service:
            cold, cold_s = _run_batch(service, graphs)
            warm, warm_s = _run_batch(service, graphs)
            return cold, warm, cold_s, warm_s, service.stats()

    cold, warm, cold_s, warm_s, stats = benchmark.pedantic(
        run, rounds=1, iterations=1)

    report = ExperimentReport(
        experiment="Service bench",
        description="cold vs warm batch over the evaluation models")
    for (c, w, name) in zip(cold, warm, MODELS):
        report.add(name, cold_s=c.run_time_s, warm_s=w.run_time_s,
                   speedup_pct=c.search.speedup_percent)
    report.add("batch_total", cold_s=cold_s, warm_s=warm_s,
               speedup_x=cold_s / warm_s)
    print("\n" + report.to_text())
    _record("cold_vs_warm", {"cold_seconds": cold_s, "warm_seconds": warm_s,
                             "speedup": cold_s / warm_s})

    assert all(not r.cache_hit for r in cold)
    assert all(r.cache_hit for r in warm)
    for c, w in zip(cold, warm):
        assert c.graph.structural_hash() == w.graph.structural_hash()
    assert cold_s >= 10.0 * warm_s, \
        f"warm batch not 10x faster: cold={cold_s:.3f}s warm={warm_s:.3f}s"
    assert stats["cache"]["misses"] == len(MODELS)
    assert stats["cache"]["memory_hits"] == len(MODELS)


def test_service_parallel_scaling(benchmark):
    """Full parallel stack vs one serial worker, with a stage breakdown.

    The parallel leg exercises both levels of parallelism: four service
    workers run jobs concurrently *and* each job's search shards its
    candidate evaluation across the persistent process pool (registry
    config wire-through).  Because candidate evaluation happens in worker
    processes, the service threads spend their time blocked on pipes —
    outside the GIL — which is what lets the stack scale on real cores.

    Two honesty measures ride along in the payload: ``cores`` (the CI
    gate only enforces its >=1.2x floor when the recording host had >1
    core — sharding CPU-bound work cannot beat serial on one core) and a
    serialise/dispatch/compute breakdown from the pool's profiling hooks
    showing where the wall-clock actually went.
    """
    graphs = _graphs()
    parallel_config = dict(TASO_CONFIG, parallel=True, num_workers=2)

    def run():
        with OptimisationService(num_workers=1) as service:
            serial, serial_s = _run_batch(service, graphs, use_cache=False)
        with OptimisationService(num_workers=4) as service:
            started = time.perf_counter()
            parallel = service.optimise_batch(graphs, "taso", parallel_config,
                                              use_cache=False)
            parallel_s = time.perf_counter() - started
        # Stage attribution, measured on one directly profiled search (the
        # service path spins pools inside registry-created optimisers where
        # the profiler is out of reach).
        profiler = StageProfiler()
        with WorkerPool(num_workers=2, profiler=profiler) as pool:
            TASOOptimizer(pool=pool, **TASO_CONFIG).optimise(
                graphs[0][0], graphs[0][1])
        return serial, serial_s, parallel, parallel_s, profiler.snapshot()

    serial, serial_s, parallel, parallel_s, stages = benchmark.pedantic(
        run, rounds=1, iterations=1)

    stage_total = sum(stages.values()) or 1.0
    report = ExperimentReport(
        experiment="Service bench",
        description="1 serial worker vs 4 workers + intra-search pool")
    report.add("serial", seconds=serial_s, jobs_per_s=len(MODELS) / serial_s)
    report.add("parallel_4x2", seconds=parallel_s,
               jobs_per_s=len(MODELS) / parallel_s)
    report.add("scaling", speedup_x=serial_s / parallel_s)
    for name, seconds in sorted(stages.items()):
        report.add(f"stage:{name}", seconds=seconds,
                   fraction=seconds / stage_total)
    print("\n" + report.to_text())
    _record("parallel_scaling", {
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "speedup": serial_s / parallel_s,
        "cores": os.cpu_count() or 1,
        "service_workers": 4,
        "search_workers": 2,
        "stages": {name: {"seconds": seconds,
                          "fraction": seconds / stage_total}
                   for name, seconds in stages.items()},
        "equivalence": {
            "final_hash": "matched",
            "final_cost_float64": "matched",
            "models_checked": len(MODELS),
        },
    })

    assert [r.search.model for r in parallel] == MODELS
    for s, p in zip(serial, parallel):
        # Bit-for-bit, not approximate: parallel evaluation is an
        # execution strategy, never a different search.
        assert s.graph.structural_hash() == p.graph.structural_hash()
        assert s.search.final_cost_ms == p.search.final_cost_ms


def test_warm_shared_cache_across_services(benchmark, tmp_path):
    """A second service on the same cache directory never re-searches.

    This is the multi-process story measured in one process: service B is a
    cold process-equivalent (fresh memory tier) whose only warmth is the
    shared locked directory service A populated.
    """
    graphs = _graphs()

    def run():
        with OptimisationService(num_workers=2,
                                 cache_dir=tmp_path) as service_a:
            cold, cold_s = _run_batch(service_a, graphs)
        with OptimisationService(num_workers=2,
                                 cache_dir=tmp_path) as service_b:
            shared, shared_s = _run_batch(service_b, graphs)
            return cold, cold_s, shared, shared_s, service_b.stats()

    cold, cold_s, shared, shared_s, stats_b = benchmark.pedantic(
        run, rounds=1, iterations=1)

    report = ExperimentReport(
        experiment="Service bench",
        description="cold search vs warm *shared-directory* cache")
    report.add("cold_populate", seconds=cold_s)
    report.add("shared_warm", seconds=shared_s,
               speedup_x=cold_s / shared_s)
    print("\n" + report.to_text())
    _record("warm_shared_cache", {
        "cold_seconds": cold_s, "shared_warm_seconds": shared_s,
        "speedup": cold_s / shared_s,
        "persistent_hits": stats_b["cache"]["persistent_hits"],
    })

    assert all(not r.cache_hit for r in cold)
    assert all(r.cache_hit for r in shared)  # zero searches in service B
    assert stats_b["cache"]["persistent_hits"] == len(MODELS)
    for c, s in zip(cold, shared):
        assert c.graph.structural_hash() == s.graph.structural_hash()
    if not SMOKE:
        assert cold_s >= 2.0 * shared_s, \
            (f"shared warm batch not 2x faster: "
             f"cold={cold_s:.3f}s shared={shared_s:.3f}s")


def test_dedup_under_contention(benchmark):
    """N identical concurrent submissions cost ~one search, not N."""
    graph = build_small_model("squeezenet")

    def hammer(service, use_cache):
        job_ids = [None] * CONTENTION
        barrier = threading.Barrier(CONTENTION)

        def admit(slot):
            barrier.wait()
            job_ids[slot] = service.submit(graph, "taso", TASO_CONFIG,
                                           model_name=f"caller{slot}",
                                           use_cache=use_cache)

        threads = [threading.Thread(target=admit, args=(i,))
                   for i in range(CONTENTION)]
        started = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        results = service.gather(job_ids, timeout=300)
        return results, time.perf_counter() - started

    def run():
        with OptimisationService(num_workers=4) as service:
            deduped, dedup_s = hammer(service, use_cache=True)
            searches_dedup = service.stats()["jobs"]["succeeded"] \
                - sum(r.coalesced or r.cache_hit for r in deduped)
        with OptimisationService(num_workers=4) as service:
            duplicated, dup_s = hammer(service, use_cache=False)
        return deduped, dedup_s, searches_dedup, duplicated, dup_s

    deduped, dedup_s, searches_dedup, duplicated, dup_s = benchmark.pedantic(
        run, rounds=1, iterations=1)

    report = ExperimentReport(
        experiment="Service bench",
        description=f"{CONTENTION} identical concurrent submissions")
    report.add("deduplicated", seconds=dedup_s, searches=float(searches_dedup))
    report.add("duplicated", seconds=dup_s, searches=float(CONTENTION))
    report.add("contention", speedup_x=dup_s / dedup_s)
    print("\n" + report.to_text())
    _record("dedup_under_contention", {
        "submissions": CONTENTION,
        "dedup_seconds": dedup_s, "duplicated_seconds": dup_s,
        "speedup": dup_s / dedup_s, "searches_with_dedup": searches_dedup,
    })

    # Exactly one search ran for the deduplicated batch.
    assert searches_dedup == 1
    assert sum(1 for r in deduped if r.coalesced) == CONTENTION - 1
    assert all(not r.coalesced for r in duplicated)
    hashes = {r.graph.structural_hash() for r in deduped + duplicated}
    assert len(hashes) == 1
    if not SMOKE:
        assert dup_s > dedup_s, \
            f"dedup slower than duplicating: {dedup_s:.3f}s vs {dup_s:.3f}s"


def test_async_and_remote_worker_backends(benchmark):
    """The batch runs identically on async local workers and a remote box."""
    graphs = _graphs()

    def run():
        with OptimisationService(num_workers=2) as service:
            baseline, baseline_s = _run_batch(service, graphs,
                                              use_cache=False)
        with OptimisationService(num_workers=2, backend="async") as service:
            async_local, async_s = _run_batch(service, graphs,
                                              use_cache=False)
            async_stats = service.stats()
        with WorkerServer(num_workers=2) as server:
            with OptimisationService(
                    num_workers=2,
                    remote_endpoints=[server.endpoint]) as service:
                remote, remote_s = _run_batch(service, graphs,
                                              use_cache=False)
                remote_stats = service.stats()
        return (baseline, baseline_s, async_local, async_s, async_stats,
                remote, remote_s, remote_stats)

    (baseline, baseline_s, async_local, async_s, async_stats,
     remote, remote_s, remote_stats) = benchmark.pedantic(
        run, rounds=1, iterations=1)

    report = ExperimentReport(
        experiment="Service bench",
        description="thread vs async-process vs remote JSON-RPC workers")
    report.add("threads", seconds=baseline_s,
               jobs_per_s=len(MODELS) / baseline_s)
    report.add("async_local", seconds=async_s,
               jobs_per_s=len(MODELS) / async_s)
    report.add("remote_rpc", seconds=remote_s,
               jobs_per_s=len(MODELS) / remote_s)
    print("\n" + report.to_text())
    _record("worker_backends", {
        "thread_seconds": baseline_s,
        "async_local_seconds": async_s,
        "remote_seconds": remote_s,
        "remote_dispatched": remote_stats["pool"]["dispatched_remote"],
    })

    assert async_stats["pool"]["dispatched_local"] == len(MODELS)
    # Health-aware dispatch caps remote in-flight at the worker's *real*
    # ping-reported capacity (2 here), so part of the batch legitimately
    # spills to the local pool; the split depends on timing.
    pool = remote_stats["pool"]
    assert pool["dispatched_remote"] >= 1
    assert pool["dispatched_remote"] + pool["dispatched_local"] == len(MODELS)
    assert pool["remote_fallbacks"] == 0
    for b, a, r in zip(baseline, async_local, remote):
        assert b.graph.structural_hash() == a.graph.structural_hash()
        assert b.graph.structural_hash() == r.graph.structural_hash()
        assert b.search.final_cost_ms == pytest.approx(r.search.final_cost_ms)


# ---------------------------------------------------------------------------
# dispatch under skewed load

#: How long each slot-occupying search holds the slow box, and how many of
#: them queue on its single worker.
_OCCUPY_S = 0.6 if SMOKE else 1.2
_OCCUPIERS = 2
_SKEW_JOBS = 4 if SMOKE else 6


class _SleepingOptimizer:
    """Optimiser that simulates a long search by sleeping."""

    name = "sleep-bench"

    def __init__(self, delay_s: float = 0.5):
        self.delay_s = delay_s

    def optimise(self, graph, model_name: str = "") -> SearchResult:
        time.sleep(self.delay_s)
        return SearchResult(
            optimiser=self.name, model=model_name or graph.name,
            initial_graph=graph, final_graph=graph,
            initial_latency_ms=1.0, final_latency_ms=0.5,
            initial_cost_ms=1.0, final_cost_ms=0.5,
            optimisation_time_s=self.delay_s)


def _occupy_endpoint(endpoint: str, graph, count: int, delay_s: float):
    """Park ``count`` sleeping searches on ``endpoint`` (returns threads)."""
    request = JobRequest(graph=graph, optimiser="sleep-bench",
                         config={"delay_s": delay_s})

    def run():
        with RemoteWorkerClient(endpoint) as client:
            client.optimise(request)

    threads = [threading.Thread(target=run, daemon=True)
               for _ in range(count)]
    for thread in threads:
        thread.start()
    time.sleep(0.1)  # let the occupiers reach the server's semaphore
    return threads


def _skewed_batch(graph, endpoints, router: str) -> float:
    """Run the job batch against the skewed fleet; returns wall seconds."""
    with OptimisationService(num_workers=2, remote_endpoints=list(endpoints),
                             router=router) as service:
        if router == "health":
            service.probe_workers()  # learn capacity + the parked load now
        started = time.perf_counter()
        job_ids = [service.submit(graph, "sleep-bench",
                                  {"delay_s": 0.05}, use_cache=False,
                                  model_name=f"job{i}")
                   for i in range(_SKEW_JOBS)]
        results = service.gather(job_ids, timeout=300)
        elapsed = time.perf_counter() - started
    assert len(results) == _SKEW_JOBS  # no job failures either way
    return elapsed


def test_dispatch_under_skewed_load(benchmark):
    """Health-aware routing beats round-robin when one box is saturated.

    Fleet: a 4-worker box and a 1-worker box whose only slot is occupied
    by long searches.  Round-robin keeps parking jobs behind the busy
    box; health routing sees its ping-reported load and routes around it.
    """
    register_optimiser("sleep-bench", _SleepingOptimizer, {"delay_s": 0.5},
                       "skewed-load probe", replace=True)
    graph = build_small_model("squeezenet")

    def run():
        timings = {}
        for router in ("round_robin", "health"):
            with WorkerServer(num_workers=4) as fast, \
                    WorkerServer(num_workers=1) as slow:
                occupiers = _occupy_endpoint(slow.endpoint, graph,
                                             _OCCUPIERS, _OCCUPY_S)
                timings[router] = _skewed_batch(
                    graph, [slow.endpoint, fast.endpoint], router)
                for thread in occupiers:
                    thread.join(timeout=60)
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = timings["round_robin"] / timings["health"]

    report = ExperimentReport(
        experiment="Service bench",
        description=f"{_SKEW_JOBS} jobs, one saturated box in a 2-box fleet")
    report.add("round_robin", seconds=timings["round_robin"])
    report.add("health_aware", seconds=timings["health"], speedup_x=speedup)
    print("\n" + report.to_text())
    _record("dispatch_skewed_load", {
        "jobs": _SKEW_JOBS,
        "round_robin_seconds": timings["round_robin"],
        "health_seconds": timings["health"],
        "speedup": speedup,
    })

    assert speedup > 1.0, \
        (f"health routing not faster under skew: rr="
         f"{timings['round_robin']:.3f}s health={timings['health']:.3f}s")


# ---------------------------------------------------------------------------
# cross-process dedup

_XPROC = 3 if SMOKE else 4
_XPROC_SEARCH_S = 0.4 if SMOKE else 0.8
_XPROC_LEASES = LeaseConfig(heartbeat_s=0.1, stale_after_s=5.0,
                            poll_interval_s=0.02, max_wait_s=120.0)


class _TouchingOptimizer:
    """Sleeping optimiser that records each execution as a unique file."""

    name = "touch-bench"

    def __init__(self, touch_dir: str = "", delay_s: float = 0.5):
        self.touch_dir = touch_dir
        self.delay_s = delay_s

    def optimise(self, graph, model_name: str = "") -> SearchResult:
        with open(os.path.join(self.touch_dir,
                               f"exec-{uuid.uuid4().hex}"), "w") as handle:
            handle.write(str(os.getpid()))
        time.sleep(self.delay_s)
        return SearchResult(
            optimiser=self.name, model=model_name or graph.name,
            initial_graph=graph, final_graph=graph,
            initial_latency_ms=1.0, final_latency_ms=0.5,
            initial_cost_ms=1.0, final_cost_ms=0.5,
            optimisation_time_s=self.delay_s)


def test_cross_process_dedup(benchmark, tmp_path):
    """N simultaneous identical submissions from N OS processes: 1 search."""
    register_optimiser("touch-bench", _TouchingOptimizer, {},
                       "cross-process dedup probe", replace=True)
    graph = build_small_model("squeezenet")
    ctx = multiprocessing.get_context("fork")

    def hammer(dedup: bool, cache_root: Path, touch_dir: Path) -> float:
        touch_dir.mkdir(parents=True, exist_ok=True)
        barrier = ctx.Barrier(_XPROC + 1)

        def child(index: int) -> None:
            cache_dir = (cache_root if dedup
                         else cache_root / f"private{index}")
            with OptimisationService(num_workers=2, cache_dir=cache_dir,
                                     cross_process_dedup=dedup,
                                     lease_config=_XPROC_LEASES) as service:
                barrier.wait(timeout=60)
                service.optimise(
                    graph, "touch-bench",
                    {"touch_dir": str(touch_dir),
                     "delay_s": _XPROC_SEARCH_S}, timeout=120)

        procs = [ctx.Process(target=child, args=(i,))
                 for i in range(_XPROC)]
        for proc in procs:
            proc.start()
        barrier.wait(timeout=60)
        started = time.perf_counter()
        for proc in procs:
            proc.join(timeout=180)
            assert proc.exitcode == 0, f"submitter exit {proc.exitcode}"
        return time.perf_counter() - started

    def run():
        dedup_s = hammer(True, tmp_path / "shared", tmp_path / "t1")
        dup_s = hammer(False, tmp_path / "priv", tmp_path / "t2")
        return dedup_s, dup_s

    dedup_s, dup_s = benchmark.pedantic(run, rounds=1, iterations=1)
    searches_dedup = len(list((tmp_path / "t1").iterdir()))
    searches_dup = len(list((tmp_path / "t2").iterdir()))
    speedup = searches_dup / max(1, searches_dedup)

    report = ExperimentReport(
        experiment="Service bench",
        description=f"{_XPROC} identical submissions from separate processes")
    report.add("lease_dedup", seconds=dedup_s,
               searches=float(searches_dedup))
    report.add("no_leases", seconds=dup_s, searches=float(searches_dup))
    report.add("work_reduction", speedup_x=float(speedup))
    print("\n" + report.to_text())
    _record("cross_process_dedup", {
        "processes": _XPROC,
        "searches_with_leases": searches_dedup,
        "searches_without_leases": searches_dup,
        "dedup_seconds": dedup_s,
        "duplicated_seconds": dup_s,
        "speedup": speedup,
    })

    # Exactly one search across every process; without leases, every
    # process runs its own.
    assert searches_dedup == 1
    assert searches_dup == _XPROC
