"""Benchmarks for the optimisation service: cold-vs-warm throughput and
parallel scaling.

Cold submissions pay the full search; warm re-submissions return from the
fingerprint cache.  Parallel scaling compares a 1-worker pool against a
4-worker pool on cache-bypassing jobs — wall-clock gains depend on the cores
the host grants (a single-core CI box shows ~1x), so the bench asserts result
*equivalence* and prints the measured scaling.
"""

import time

import pytest

from repro.experiments import ExperimentReport, build_small_model
from repro.service import OptimisationService

MODELS = ["squeezenet", "resnext50", "bert", "vit"]
TASO_CONFIG = {"max_iterations": 25}


def _graphs():
    return [(build_small_model(name), name) for name in MODELS]


def _run_batch(service, graphs, use_cache=True):
    started = time.perf_counter()
    results = service.optimise_batch(graphs, "taso", TASO_CONFIG,
                                     use_cache=use_cache)
    return results, time.perf_counter() - started


def test_service_cold_vs_warm_throughput(benchmark):
    """Re-submitting a known model returns from cache >= 10x faster."""
    graphs = _graphs()

    def run():
        with OptimisationService(num_workers=2) as service:
            cold, cold_s = _run_batch(service, graphs)
            warm, warm_s = _run_batch(service, graphs)
            return cold, warm, cold_s, warm_s, service.stats()

    cold, warm, cold_s, warm_s, stats = benchmark.pedantic(
        run, rounds=1, iterations=1)

    report = ExperimentReport(
        experiment="Service bench",
        description="cold vs warm batch over the evaluation models")
    for (c, w, name) in zip(cold, warm, MODELS):
        report.add(name, cold_s=c.run_time_s, warm_s=w.run_time_s,
                   speedup_pct=c.search.speedup_percent)
    report.add("batch_total", cold_s=cold_s, warm_s=warm_s,
               speedup_x=cold_s / warm_s)
    print("\n" + report.to_text())

    assert all(not r.cache_hit for r in cold)
    assert all(r.cache_hit for r in warm)
    for c, w in zip(cold, warm):
        assert c.graph.structural_hash() == w.graph.structural_hash()
    assert cold_s >= 10.0 * warm_s, \
        f"warm batch not 10x faster: cold={cold_s:.3f}s warm={warm_s:.3f}s"
    assert stats["cache"]["misses"] == len(MODELS)
    assert stats["cache"]["memory_hits"] == len(MODELS)


def test_service_parallel_scaling(benchmark):
    """4 workers produce graphs identical to serial; scaling is reported."""
    graphs = _graphs()

    def run():
        with OptimisationService(num_workers=1) as service:
            serial, serial_s = _run_batch(service, graphs, use_cache=False)
        with OptimisationService(num_workers=4) as service:
            parallel, parallel_s = _run_batch(service, graphs,
                                              use_cache=False)
        return serial, serial_s, parallel, parallel_s

    serial, serial_s, parallel, parallel_s = benchmark.pedantic(
        run, rounds=1, iterations=1)

    report = ExperimentReport(
        experiment="Service bench",
        description="1-worker vs 4-worker batch (cache bypassed)")
    report.add("serial", seconds=serial_s, jobs_per_s=len(MODELS) / serial_s)
    report.add("parallel_4", seconds=parallel_s,
               jobs_per_s=len(MODELS) / parallel_s)
    report.add("scaling", speedup_x=serial_s / parallel_s)
    print("\n" + report.to_text())

    assert [r.search.model for r in parallel] == MODELS
    for s, p in zip(serial, parallel):
        assert s.graph.structural_hash() == p.graph.structural_hash()
        assert s.search.final_cost_ms == pytest.approx(p.search.final_cost_ms)
