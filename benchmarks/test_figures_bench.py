"""Benchmarks regenerating the paper's Figures 4, 5, 6, 7 and 8."""

import numpy as np

from repro.experiments import (run_figure4, run_figure5, run_figure6,
                               run_figure7, run_figure8)


def test_fig4_speedup(benchmark, suite_results):
    """Figure 4: end-to-end speedup of TASO vs X-RLflow on all seven DNNs."""
    report = benchmark.pedantic(run_figure4, args=(suite_results,),
                                rounds=1, iterations=1)
    print("\n" + report.to_text())
    taso = report.column("taso_speedup_pct")
    xrl = report.column("xrlflow_speedup_pct")
    assert set(taso) == set(xrl) and len(taso) == 7
    # Both optimisers must find real speedups everywhere.
    assert all(v > 0 for v in taso.values())
    assert all(v > 0 for v in xrl.values())
    # Headline shape (paper): X-RLflow's advantage is concentrated on the
    # transformer models, where the cost model cannot see the constant-folding
    # chains.  On the convolutional models the reduced training budget of the
    # benchmark harness may leave X-RLflow short of TASO's exhaustive fusion
    # sweep (see EXPERIMENTS.md); the transformer-side claim is asserted.
    transformer = ["bert", "dalle", "tt", "vit"]
    assert np.mean([xrl[m] - taso[m] for m in transformer]) >= -1.0
    assert sum(xrl[m] >= taso[m] for m in transformer) >= 2


def test_fig5_rule_heatmap(benchmark, suite_results):
    """Figure 5: which rewrite rules X-RLflow applied, per DNN."""
    report = benchmark.pedantic(run_figure5, args=(suite_results,),
                                rounds=1, iterations=1)
    print("\n" + report.to_text())
    totals = report.column("total_substitutions")
    assert all(t >= 0 for t in totals.values())
    assert any(t > 0 for t in totals.values())


def test_fig6_optimisation_time(benchmark, suite_results):
    """Figure 6: optimisation wall-clock time of TASO vs X-RLflow."""
    report = benchmark.pedantic(run_figure6, args=(suite_results,),
                                rounds=1, iterations=1)
    print("\n" + report.to_text())
    taso = report.column("taso_seconds")
    xrl = report.column("xrlflow_seconds")
    assert all(t > 0 for t in taso.values())
    assert all(t > 0 for t in xrl.values())


def test_fig7_shape_generalisation(benchmark, rl_config):
    """Figure 7: a trained agent generalises to unseen tensor shapes."""
    report = benchmark.pedantic(run_figure7, args=(rl_config,),
                                rounds=1, iterations=1)
    print("\n" + report.to_text())
    speedups = report.column("speedup_pct")
    assert len(speedups) == 6
    # Every shape variant (trained or unseen) must not regress.
    assert all(s >= -1e-6 for s in speedups.values())


def test_fig8_tensat_comparison(benchmark, rl_config):
    """Figure 8: X-RLflow vs the equality-saturation baseline (Tensat)."""
    report = benchmark.pedantic(run_figure8, kwargs={"config": rl_config},
                                rounds=1, iterations=1)
    print("\n" + report.to_text())
    tensat = report.column("tensat_speedup_pct")
    xrl = report.column("xrlflow_speedup_pct")
    assert set(tensat) == {"bert", "inception_v3", "squeezenet", "resnext50"}
    # The paper's shape: X-RLflow wins on BERT (Tensat's multi-pattern limit
    # stops it from exploring the matmul merges).
    assert xrl["bert"] >= tensat["bert"] - 1.0
