"""Benchmarks regenerating the paper's Tables 1, 2 and 3."""


from repro.experiments import run_table1, run_table2, run_table3


def test_table1_cost_model_gap(benchmark):
    """Table 1: cost model vs end-to-end latency discrepancy per DNN."""
    report = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    print("\n" + report.to_text())
    diffs = report.column("diff_percent")
    # Paper: discrepancies between ~5% and ~24% across the six models.
    assert all(1.0 <= d <= 35.0 for d in diffs.values())
    assert max(diffs.values()) >= 10.0


def test_table2_pet_vs_taso(benchmark):
    """Table 2: PET wins on ResNet-18 but loses on ResNeXt-50."""
    report = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    print("\n" + report.to_text())
    pet, taso = report.column("pet_ms"), report.column("taso_ms")
    assert pet["resnet18"] < taso["resnet18"]
    assert pet["resnext50"] > taso["resnext50"]


def test_table3_complexity(benchmark):
    """Table 3: per-DNN rewrite complexity (InceptionV3 the richest)."""
    report = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    print("\n" + report.to_text())
    complexity = report.column("complexity")
    assert complexity["inception_v3"] == max(complexity.values())
    assert all(c > 0 for c in complexity.values())
