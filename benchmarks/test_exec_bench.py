"""Benchmarks for the numpy execution backend and the differential harness.

Three measurements, all recorded to ``BENCH_exec.json`` at the repo root:

* **per-model execute latency** — real numpy wall-clock per zoo model at
  reduced size, next to the analytic simulator's estimate for the same
  graph, so the sim-vs-measured ratio is tracked over time.
* **calibration** — :func:`repro.exec.calibrate` fits the simulator's
  device constants to executed kernel timings; the RMS-log-error before
  and after, and the per-op-class measured/sim ratios of the fitted
  device, are the witness that the analytic model tracks reality.
* **equivalence sweep** — the differential harness run as a benchmark:
  every curated rule and a panel of optimisers are checked for executed
  output preservation.  ``check_bench.py`` requires this section with
  ``status == "passed"`` and a 100% pass rate — a run that skips the
  sweep fails the gate.

Set ``EXEC_BENCH_SMOKE=1`` (CI) for fewer models and repetitions.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.cost import E2ESimulator
from repro.exec import NumpyExecutor, calibrate, differential_check
from repro.experiments import build_small_model
from repro.ir import GraphBuilder
from repro.rules import exact_ruleset
from repro.rules.rulesets import DEFAULT_RULE_CLASSES
from repro.search import (ConvToWinogradGemm, GreedyOptimizer,
                          RandomSearchOptimizer, TASOOptimizer)

SMOKE = os.environ.get("EXEC_BENCH_SMOKE") == "1"
REPEATS = 1 if SMOKE else 3
#: Zoo models executed per run (reduced-size variants).
BENCH_MODELS = (["squeezenet", "bert"] if SMOKE else
                ["squeezenet", "resnet18", "bert", "vit"])

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_exec.json"


def _record(section: str, payload: dict) -> None:
    """Merge one benchmark section into the repo's BENCH_exec.json."""
    data = {"benchmark": "exec", "schema": 1, "results": {}}
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except (ValueError, OSError):
            pass
    data.setdefault("results", {})[section] = payload
    data["smoke"] = SMOKE
    BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _best_of(fn, repeats=REPEATS):
    best_s, result = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best_s = min(best_s, time.perf_counter() - started)
    return best_s, result


# ---------------------------------------------------------------------------
def test_model_execute_latency(benchmark):
    """Executed wall-clock per zoo model, with the simulator side by side."""
    executor = NumpyExecutor()
    sim = E2ESimulator()
    payload = {}

    def run():
        rows = {}
        for name in BENCH_MODELS:
            graph = build_small_model(name)
            execute_ms = executor.measure(graph, repeats=REPEATS)
            sim_ms = sim.latency_ms(graph)
            rows[name] = {
                "execute_ms": float(execute_ms),
                "sim_ms": float(sim_ms),
                "ratio": float(execute_ms / max(sim_ms, 1e-12)),
                "nodes": float(graph.num_nodes),
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, row in rows.items():
        payload[name] = row
        print(f"{name}: executed {row['execute_ms']:.2f} ms, "
              f"simulated {row['sim_ms']:.3f} ms "
              f"(ratio {row['ratio']:.1f}, {int(row['nodes'])} nodes)")
        assert row["execute_ms"] > 0 and row["sim_ms"] > 0
    _record("models", payload)


# ---------------------------------------------------------------------------
def test_calibration_fits_device_constants(benchmark):
    """calibrate() reduces sim-vs-measured RMS log error on kernel samples."""
    executor = NumpyExecutor()
    graphs = [build_small_model(name) for name in BENCH_MODELS[:2]]

    def run():
        return calibrate(graphs, executor=executor, repeats=REPEATS)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.samples, "calibration collected no kernel samples"
    assert result.error_after <= result.error_before + 1e-9
    assert result.improvement >= 1.0

    ratios = result.op_class_ratios()
    payload = {
        "samples": float(len(result.samples)),
        "error_before": float(result.error_before),
        "error_after": float(result.error_after),
        "improvement": float(result.improvement),
        "flops_scale": float(result.flops_scale),
        "bytes_scale": float(result.bytes_scale),
    }
    print(f"calibration: {len(result.samples)} samples, RMS log error "
          f"{result.error_before:.3f} -> {result.error_after:.3f} "
          f"(improvement {result.improvement:.2f}x)")
    _record("calibration", payload)
    _record("op_class_ratio",
            {cls: float(r) for cls, r in sorted(ratios.items())})


# ---------------------------------------------------------------------------
def _rule_donors():
    """Donor graphs triggering every curated rule family."""
    donors = []

    b = GraphBuilder("mlp")
    x = b.input((4, 16), name="x")
    donors.append(b.build([b.linear(b.relu(b.linear(x, 16, 32, name="fc1")),
                                    32, 8, name="fc2")]))

    b = GraphBuilder("convnet")
    x = b.input((1, 3, 16, 16), name="image")
    h = b.conv_bn_relu(x, 8, kernel=3)
    donors.append(b.build([b.relu(b.conv2d(h, 8, kernel=3))]))

    b = GraphBuilder("fire")
    x = b.input((1, 8, 8, 8), name="image")
    s = b.relu(b.conv2d(x, 4, kernel=1))
    donors.append(b.build([b.concat(
        [b.relu(b.conv2d(s, 8, kernel=1)), b.relu(b.conv2d(s, 8, kernel=3))],
        axis=1)]))

    b = GraphBuilder("attention")
    x = b.input((1, 8, 16), name="tokens")
    donors.append(b.build([b.multi_head_attention(
        x, hidden=16, num_heads=2, seq_len=8, batch=1, name="attn")]))

    b = GraphBuilder("scaled_attention")
    x = b.input((2, 4, 8), name="x")
    w = b.weight((8, 8), name="w")
    scores = b.batch_matmul(b.matmul(x, w), b.transpose(x, (0, 2, 1)))
    donors.append(b.build([b.mul(scores, b.constant((1,), name="scale"))]))

    b = GraphBuilder("patterns")
    x = b.input((2, 12), name="x")
    y = b.weight((2, 12), name="y")
    c = b.constant((1,), name="c")
    scaled = b.mul(b.add(x, y), c)
    reshaped = b.mul(b.reshape(x, (2, 3, 4)), c)
    t = b.transpose(b.transpose(reshaped, (0, 2, 1)), (0, 2, 1))
    donors.append(b.build([scaled, t]))

    b = GraphBuilder("par_convs")
    x = b.input((1, 4, 8, 8), name="x")
    donors.append(b.build([b.concat(
        [b.conv2d(x, 6, kernel=3), b.conv2d(x, 10, kernel=3)], axis=1)]))

    b = GraphBuilder("shared_mm")
    x = b.input((4, 8), name="x")
    a = b.matmul(x, b.weight((8, 6), name="w1"))
    bb = b.matmul(x, b.weight((8, 10), name="w2"))
    donors.append(b.build([a, bb]))

    b = GraphBuilder("slice_cat")
    x = b.input((2, 4), name="x")
    y = b.weight((2, 6), name="y")
    donors.append(b.build([b.relu(
        b.slice(b.concat([x, y], axis=1), axis=1, start=0, end=4))]))

    b = GraphBuilder("reassoc")
    x = b.input((4, 8), name="x")
    donors.append(b.build([b.matmul(
        b.matmul(x, b.weight((8, 16), name="a")),
        b.weight((16, 4), name="c2"))]))

    # Chained-pattern donors: conv-bn-relu fusion needs a FusedConvBN
    # already in place; fold-mul-matmul needs the mul pushed first.
    from repro.rules.rulesets import (FuseConvBatchNorm,
                                      PushMulThroughBatchMatMul)
    fuse = FuseConvBatchNorm()
    convnet = donors[1]
    donors.append(fuse.apply(convnet, fuse.find_matches(convnet)[0]))
    push = PushMulThroughBatchMatMul()
    scaled = donors[4]
    donors.append(push.apply(scaled, push.find_matches(scaled)[0]))

    return donors


def test_equivalence_sweep(benchmark):
    """The differential harness as a recorded benchmark: every rule and a
    panel of optimisers preserve executed outputs.  This is the witness
    ``check_bench.py`` demands — skipping the sweep fails the gate."""
    donors = _rule_donors()
    rule_classes = list(DEFAULT_RULE_CLASSES) + [ConvToWinogradGemm]

    def run():
        checks, failures, rules_fired = 0, [], 0
        for rule_cls in rule_classes:
            rule = rule_cls()
            fired = False
            for graph in donors:
                for match in rule.find_matches(graph)[:1]:
                    transformed = rule.apply(graph, match)
                    report = differential_check(
                        graph, transformed,
                        require_values=rule.exactly_equivalent)
                    checks += 1
                    fired = True
                    if not report.equivalent:
                        failures.append((rule.name, graph.name,
                                         report.problems))
                if fired:
                    break
            if fired:
                rules_fired += 1

        exact = exact_ruleset()
        optimisers = [
            TASOOptimizer(ruleset=exact, max_iterations=8),
            GreedyOptimizer(ruleset=exact, max_iterations=8),
            RandomSearchOptimizer(ruleset=exact, num_walks=1, horizon=5),
        ]
        optimiser_checks = 0
        for optimiser in optimisers:
            for graph in donors[:3]:
                result = optimiser.optimise(graph)
                report = differential_check(graph, result.final_graph)
                checks += 1
                optimiser_checks += 1
                if not report.equivalent:
                    failures.append((optimiser.name, graph.name,
                                     report.problems))
        return checks, failures, rules_fired, optimiser_checks

    checks, failures, rules_fired, optimiser_checks = benchmark.pedantic(
        run, rounds=1, iterations=1)
    assert not failures, failures
    assert rules_fired == len(rule_classes), (
        f"only {rules_fired}/{len(rule_classes)} rules fired on the donors")

    from repro.exec.differential import DEFAULT_ATOL, DEFAULT_RTOL
    payload = {
        "rules_checked": float(rules_fired),
        "optimiser_checks": float(optimiser_checks),
        "total_checks": float(checks),
        "pass_rate": 1.0 if not failures else
            1.0 - len(failures) / max(checks, 1),
        "status": "passed" if not failures else "failed",
        "rtol": float(DEFAULT_RTOL),
        "atol": float(DEFAULT_ATOL),
    }
    print(f"equivalence sweep: {checks} checks "
          f"({rules_fired} rules, {optimiser_checks} optimiser runs), "
          f"pass rate {payload['pass_rate']:.0%}")
    _record("equivalence", payload)
