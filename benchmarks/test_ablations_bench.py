"""Ablation benchmarks for the design choices called out in DESIGN.md:

* reward feedback frequency ``N`` (sparse end-to-end measurement),
* number of GAT message-passing layers ``k``,
* reward signal: end-to-end latency vs the TASO cost model.
"""


from repro.cost import CostModel, E2ESimulator
from repro.core import XRLflow, XRLflowConfig
from repro.experiments import benchmark_config, build_small_model


def _ablation_config(**overrides) -> XRLflowConfig:
    cfg = benchmark_config(num_episodes=4, max_steps=12, max_candidates=16,
                           eval_episodes=1)
    for key, value in overrides.items():
        setattr(cfg, key, value)
    return cfg


def _optimise(config, e2e=None):
    graph = build_small_model("bert")
    return XRLflow(config, e2e=e2e).optimise(graph, "bert")


def test_ablation_reward_frequency(benchmark):
    """Sparse (N=5) vs dense (N=1) end-to-end feedback."""
    def run():
        dense = _optimise(_ablation_config(feedback_interval=1))
        sparse = _optimise(_ablation_config(feedback_interval=5))
        return dense, sparse

    dense, sparse = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nreward frequency ablation: N=1 speedup {dense.speedup_percent:+.1f}%, "
          f"N=5 speedup {sparse.speedup_percent:+.1f}%")
    assert dense.speedup >= 1.0 - 1e-9
    assert sparse.speedup >= 1.0 - 1e-9


def test_ablation_gat_depth(benchmark):
    """k = 1 vs k = 3 message-passing layers in the GNN encoder."""
    def run():
        shallow = _optimise(_ablation_config(num_gat_layers=1))
        deep = _optimise(_ablation_config(num_gat_layers=3))
        return shallow, deep

    shallow, deep = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nGAT depth ablation: k=1 speedup {shallow.speedup_percent:+.1f}%, "
          f"k=3 speedup {deep.speedup_percent:+.1f}%")
    assert shallow.speedup >= 1.0 - 1e-9
    assert deep.speedup >= 1.0 - 1e-9


class _CostModelSimulator(E2ESimulator):
    """An "end-to-end" signal that is secretly the TASO cost model.

    Used to ablate the paper's claim that the end-to-end reward signal (not
    just the RL search strategy) is responsible for part of the gains.
    """

    def __init__(self):
        super().__init__()
        self._cost_model = CostModel()

    def latency_ms(self, graph):  # type: ignore[override]
        return self._cost_model.estimate(graph)


def test_ablation_reward_signal(benchmark):
    """End-to-end latency reward vs cost-model reward."""
    def run():
        e2e_reward = _optimise(_ablation_config())
        cost_reward = _optimise(_ablation_config(), e2e=_CostModelSimulator())
        # Re-measure the cost-model-trained result with the true simulator so
        # the comparison is apples-to-apples.
        true_latency = E2ESimulator().latency_ms(cost_reward.final_graph)
        return e2e_reward, cost_reward, true_latency

    e2e_reward, cost_reward, true_latency = benchmark.pedantic(
        run, rounds=1, iterations=1)
    true_initial = E2ESimulator().latency_ms(cost_reward.initial_graph)
    true_speedup = (true_initial / true_latency - 1.0) * 100.0
    print(f"\nreward signal ablation: e2e-reward speedup "
          f"{e2e_reward.speedup_percent:+.1f}%, cost-model-reward speedup "
          f"{true_speedup:+.1f}% (measured end-to-end)")
    assert e2e_reward.speedup >= 1.0 - 1e-9
